package marray

import (
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

// TestTileCacheMatchesDirect checks the only contract that matters:
// a cached view returns exactly the wrapped matrix's entries, across
// non-power-of-two shapes (partial edge tiles), repeated generations,
// and slot-conflict evictions in a deliberately tiny cache.
func TestTileCacheMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	c := NewTileCache(4) // tiny: conflicts guaranteed on any real matrix
	for gen := 0; gen < 3; gen++ {
		for _, sh := range []struct{ m, n int }{{13, 29}, {8, 8}, {1, 70}, {40, 3}} {
			a := RandomMonge(rng, sh.m, sh.n)
			v := c.View(Func{M: sh.m, N: sh.n, F: a.At})
			if v.Rows() != sh.m || v.Cols() != sh.n {
				t.Fatalf("view is %dx%d, want %dx%d", v.Rows(), v.Cols(), sh.m, sh.n)
			}
			for i := 0; i < sh.m; i++ {
				for j := 0; j < sh.n; j++ {
					if got, want := v.At(i, j), a.At(i, j); got != want {
						t.Fatalf("gen %d shape %dx%d: At(%d,%d)=%g, want %g",
							gen, sh.m, sh.n, i, j, got, want)
					}
				}
			}
			// Second sweep in the same generation must still agree (served
			// from filled tiles where they survived conflicts).
			for i := 0; i < sh.m; i++ {
				for j := 0; j < sh.n; j++ {
					if got, want := v.At(i, j), a.At(i, j); got != want {
						t.Fatalf("resweep gen %d: At(%d,%d)=%g, want %g", gen, i, j, got, want)
					}
				}
			}
		}
	}
	if c.Hits() == 0 || c.Misses() == 0 {
		t.Fatalf("traffic counters hits=%d misses=%d; both must be nonzero", c.Hits(), c.Misses())
	}
}

// TestTileCacheGenerationInvalidates pins the re-bind contract: a new
// View over a different matrix never serves the previous matrix's
// entries, even though the slot table is not cleared.
func TestTileCacheGenerationInvalidates(t *testing.T) {
	c := NewTileCache(8)
	a := c.View(Func{M: 16, N: 16, F: func(i, j int) float64 { return 1 }})
	for i := 0; i < 16; i++ {
		for j := 0; j < 16; j++ {
			a.At(i, j)
		}
	}
	b := c.View(Func{M: 16, N: 16, F: func(i, j int) float64 { return 2 }})
	for i := 0; i < 16; i++ {
		for j := 0; j < 16; j++ {
			if got := b.At(i, j); got != 2 {
				t.Fatalf("At(%d,%d)=%g after rebind, want 2 (stale tile served)", i, j, got)
			}
		}
	}
}

// TestTileCacheStaircasePreserved checks that wrapping a staircase
// matrix keeps the Staircase interface — Boundary forwards, and the
// +Inf blocked entries come through the cache unchanged.
func TestTileCacheStaircasePreserved(t *testing.T) {
	bound := func(i int) int { return 20 - i }
	s := StairFunc{M: 10, N: 20, F: func(i, j int) float64 { return float64(i + j) }, Bound: bound}
	v := NewTileCache(0).View(s)
	sv, ok := v.(Staircase)
	if !ok {
		t.Fatal("cached view of a Staircase does not implement Staircase")
	}
	for i := 0; i < 10; i++ {
		if sv.Boundary(i) != bound(i) {
			t.Fatalf("Boundary(%d)=%d, want %d", i, sv.Boundary(i), bound(i))
		}
		for j := 0; j < 20; j++ {
			want := float64(i + j)
			if j >= bound(i) {
				want = math.Inf(1)
			}
			if got := v.At(i, j); got != want {
				t.Fatalf("At(%d,%d)=%g, want %g", i, j, got, want)
			}
		}
	}
}

// TestTileCacheSingleFlight checks the fill contract under concurrency:
// with a cache large enough to hold the whole matrix, every entry's
// evaluation function runs exactly once no matter how many goroutines
// race on cold tiles — the per-slot lock makes fills single-flight.
func TestTileCacheSingleFlight(t *testing.T) {
	const m, n = 32, 32
	var calls atomic.Int64
	f := Func{M: m, N: n, F: func(i, j int) float64 {
		calls.Add(1)
		return float64(i*n + j)
	}}
	// (m/8)*(n/8) = 16 tiles; 64 slots means no conflict evictions, so
	// any recomputation is a single-flight failure, not an eviction.
	v := NewTileCache(64).View(f)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for k := 0; k < 4*m*n; k++ {
				i, j := rng.Intn(m), rng.Intn(n)
				if got := v.At(i, j); got != float64(i*n+j) {
					t.Errorf("At(%d,%d)=%g, want %d", i, j, got, i*n+j)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if calls.Load() != m*n {
		t.Fatalf("entry function ran %d times, want exactly %d (single-flight violated)",
			calls.Load(), m*n)
	}
}
