package marray

import (
	"math"

	"monge/internal/merr"
)

// This file provides the error-returning structural validators used at the
// public API boundaries. The Check* functions verify the property on every
// adjacent 2x2 minor in O(m*n) entry evaluations and return a typed error
// (merr.ErrNotMonge etc.) naming the first violated minor; the
// Check*Sampled variants probe a deterministic pseudo-random subset of
// those minors in O(m+n) evaluations, cheap enough for large implicit
// arrays. Both only ever test inequalities implied by the definitions, so
// neither can reject a valid array; the sampled variants can merely miss a
// violation (they are a screen, not a proof).

// sampleProbeFactor scales the sampled validators' probe count: roughly
// this many probes per unit of m+n, floored at sampleProbeMin.
const (
	sampleProbeFactor = 2
	sampleProbeMin    = 32
)

// splitmix is the splitmix64 mixer used to choose probe positions
// deterministically (no global RNG state, identical probes every run).
func splitmix(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ z>>30) * 0xbf58476d1ce4e5b9
	z = (z ^ z>>27) * 0x94d049bb133111eb
	return z ^ z>>31
}

// mongeMinorOK is the adjacent-minor Monge test with float slack.
func mongeMinorOK(a Matrix, i, j int) bool {
	x00, x01 := a.At(i, j), a.At(i, j+1)
	x10, x11 := a.At(i+1, j), a.At(i+1, j+1)
	return x00+x11 <= x01+x10+mongeSlack(x00, x01, x10, x11)
}

// inverseMinorOK is the adjacent-minor inverse-Monge test.
func inverseMinorOK(a Matrix, i, j int) bool {
	x00, x01 := a.At(i, j), a.At(i, j+1)
	x10, x11 := a.At(i+1, j), a.At(i+1, j+1)
	return x00+x11 >= x01+x10-mongeSlack(x00, x01, x10, x11)
}

// finiteMinor reports whether all four entries of the adjacent minor at
// (i, j) are finite.
func finiteMinor(a Matrix, i, j int) bool {
	return isFinite(a.At(i, j)) && isFinite(a.At(i, j+1)) &&
		isFinite(a.At(i+1, j)) && isFinite(a.At(i+1, j+1))
}

// checkAllMinors runs ok on every adjacent minor and reports the first
// failure via fail(i, j).
func checkAllMinors(a Matrix, ok func(a Matrix, i, j int) bool, fail func(i, j int) error) error {
	m, n := a.Rows(), a.Cols()
	for i := 0; i+1 < m; i++ {
		for j := 0; j+1 < n; j++ {
			if !ok(a, i, j) {
				return fail(i, j)
			}
		}
	}
	return nil
}

// checkSampledMinors probes a deterministic pseudo-random subset of the
// adjacent minors.
func checkSampledMinors(a Matrix, ok func(a Matrix, i, j int) bool, fail func(i, j int) error) error {
	m, n := a.Rows(), a.Cols()
	if m < 2 || n < 2 {
		return nil
	}
	probes := sampleProbeFactor * (m + n)
	if probes < sampleProbeMin {
		probes = sampleProbeMin
	}
	if total := (m - 1) * (n - 1); probes >= total {
		return checkAllMinors(a, ok, fail)
	}
	for t := 0; t < probes; t++ {
		h := splitmix(uint64(t))
		i := int(h % uint64(m-1))
		j := int((h >> 32) % uint64(n-1))
		if !ok(a, i, j) {
			return fail(i, j)
		}
	}
	return nil
}

// CheckMonge verifies the Monge inequality on every adjacent 2x2 minor
// (which implies it on all minors) in O(m*n) and returns an error matching
// merr.ErrNotMonge naming the first violated minor.
func CheckMonge(a Matrix) error {
	return checkAllMinors(a, mongeMinorOK, func(i, j int) error {
		return merr.Errorf(merr.ErrNotMonge, "2x2 minor at row %d, column %d violates a[i,j]+a[i+1,j+1] <= a[i,j+1]+a[i+1,j]", i, j)
	})
}

// CheckMongeSampled probes O(m+n) deterministic pseudo-random adjacent
// minors. It never rejects a true Monge array; a nil return means "no
// violation found", not a proof.
func CheckMongeSampled(a Matrix) error {
	return checkSampledMinors(a, mongeMinorOK, func(i, j int) error {
		return merr.Errorf(merr.ErrNotMonge, "sampled 2x2 minor at row %d, column %d violates a[i,j]+a[i+1,j+1] <= a[i,j+1]+a[i+1,j]", i, j)
	})
}

// CheckInverseMonge is CheckMonge for the reversed inequality, returning
// errors matching merr.ErrNotInverseMonge.
func CheckInverseMonge(a Matrix) error {
	return checkAllMinors(a, inverseMinorOK, func(i, j int) error {
		return merr.Errorf(merr.ErrNotInverseMonge, "2x2 minor at row %d, column %d violates a[i,j]+a[i+1,j+1] >= a[i,j+1]+a[i+1,j]", i, j)
	})
}

// CheckInverseMongeSampled is the sampled screen for inverse-Monge arrays.
func CheckInverseMongeSampled(a Matrix) error {
	return checkSampledMinors(a, inverseMinorOK, func(i, j int) error {
		return merr.Errorf(merr.ErrNotInverseMonge, "sampled 2x2 minor at row %d, column %d violates a[i,j]+a[i+1,j+1] >= a[i,j+1]+a[i+1,j]", i, j)
	})
}

// checkBoundaries verifies the staircase pattern (blocked entries +Inf for
// minima / -Inf when neg, closed right and downward) on the given rows,
// which must be increasing; consecutive pairs are compared. rows == nil
// means every row. O(len(rows) * n).
func checkBoundaries(a Matrix, neg bool, rows []int) error {
	sentinelSign := 1
	kind := "+Inf"
	if neg {
		sentinelSign = -1
		kind = "-Inf"
	}
	n := a.Cols()
	prev := n
	first := true
	boundary := func(i int) (int, error) {
		f := n
		for j := 0; j < n; j++ {
			inf := math.IsInf(a.At(i, j), sentinelSign)
			if inf && f == n {
				f = j
			}
			if !inf && f < n {
				return 0, merr.Errorf(merr.ErrNotStaircase,
					"row %d has a finite entry at column %d right of the %s boundary %d", i, j, kind, f)
			}
		}
		return f, nil
	}
	visit := func(i int) error {
		f, err := boundary(i)
		if err != nil {
			return err
		}
		if !first && f > prev {
			return merr.Errorf(merr.ErrNotStaircase,
				"boundary widens from %d to %d at row %d (must be nonincreasing)", prev, f, i)
		}
		first = false
		prev = f
		return nil
	}
	if rows == nil {
		for i := 0; i < a.Rows(); i++ {
			if err := visit(i); err != nil {
				return err
			}
		}
		return nil
	}
	for _, i := range rows {
		if err := visit(i); err != nil {
			return err
		}
	}
	return nil
}

// CheckStaircaseMonge verifies that the +Inf pattern of a is a valid
// staircase (merr.ErrNotStaircase otherwise) and that every adjacent fully
// finite 2x2 minor satisfies the Monge inequality (merr.ErrNotMonge
// otherwise). Both passes are O(m*n); the finite-minor pass is a necessary
// screen — the complete staircase-Monge check over all finite minors is
// O(m^2 n^2) (see IsStaircaseMonge) and reserved for tests.
func CheckStaircaseMonge(a Matrix) error {
	if err := checkBoundaries(a, false, nil); err != nil {
		return err
	}
	return checkAllMinors(a, func(a Matrix, i, j int) bool {
		return !finiteMinor(a, i, j) || mongeMinorOK(a, i, j)
	}, func(i, j int) error {
		return merr.Errorf(merr.ErrNotMonge, "finite 2x2 minor at row %d, column %d violates the Monge inequality", i, j)
	})
}

// CheckStaircaseInverseMonge is the row-maxima analogue of
// CheckStaircaseMonge: blocked entries are -Inf and finite minors must
// satisfy the inverse-Monge inequality.
func CheckStaircaseInverseMonge(a Matrix) error {
	if err := checkBoundaries(a, true, nil); err != nil {
		return err
	}
	return checkAllMinors(a, func(a Matrix, i, j int) bool {
		return !finiteMinor(a, i, j) || inverseMinorOK(a, i, j)
	}, func(i, j int) error {
		return merr.Errorf(merr.ErrNotInverseMonge, "finite 2x2 minor at row %d, column %d violates the inverse-Monge inequality", i, j)
	})
}

// CheckStaircaseMongeSampled is the O(m+n)-evaluation screen for
// staircase-Monge arrays: it verifies the boundary pattern on a
// deterministic sample of adjacent row pairs and the Monge inequality on a
// deterministic sample of finite adjacent minors. It never rejects a valid
// staircase-Monge array.
func CheckStaircaseMongeSampled(a Matrix) error {
	if err := sampledBoundaries(a, false); err != nil {
		return err
	}
	return checkSampledMinors(a, func(a Matrix, i, j int) bool {
		return !finiteMinor(a, i, j) || mongeMinorOK(a, i, j)
	}, func(i, j int) error {
		return merr.Errorf(merr.ErrNotMonge, "sampled finite 2x2 minor at row %d, column %d violates the Monge inequality", i, j)
	})
}

// sampledBoundaries checks the staircase pattern on a deterministic sample
// of adjacent row pairs using BoundaryOf (binary search, so O(lg n) per
// row); each pair must have nonincreasing boundaries. Unlike the full
// check it trusts the rows' (finite..., Inf...) shape.
func sampledBoundaries(a Matrix, neg bool) error {
	m := a.Rows()
	if m < 2 {
		return nil
	}
	look := a
	if neg {
		look = Negate(a)
	}
	probes := sampleProbeFactor * m
	if probes < sampleProbeMin {
		probes = sampleProbeMin
	}
	if probes >= m-1 {
		for i := 0; i+1 < m; i++ {
			if err := boundaryPairOK(look, i); err != nil {
				return err
			}
		}
		return nil
	}
	for t := 0; t < probes; t++ {
		i := int(splitmix(0xb0a2^uint64(t)) % uint64(m-1))
		if err := boundaryPairOK(look, i); err != nil {
			return err
		}
	}
	return nil
}

func boundaryPairOK(a Matrix, i int) error {
	if f0, f1 := BoundaryOf(a, i), BoundaryOf(a, i+1); f1 > f0 {
		return merr.Errorf(merr.ErrNotStaircase,
			"boundary widens from %d to %d between rows %d and %d (must be nonincreasing)", f0, f1, i, i+1)
	}
	return nil
}
