package marray

import "math"

// IsMonge reports whether every 2x2 minor of a satisfies the Monge
// inequality a[i,j] + a[k,l] <= a[i,l] + a[k,j]. It suffices to check
// adjacent rows and columns; the general inequality follows by summing.
// Cost is O(m*n) entry evaluations.
func IsMonge(a Matrix) bool {
	return checkAdjacent(a, func(x00, x01, x10, x11 float64) bool {
		return x00+x11 <= x01+x10+mongeSlack(x00, x01, x10, x11)
	})
}

// IsInverseMonge reports whether every 2x2 minor of a satisfies
// a[i,j] + a[k,l] >= a[i,l] + a[k,j].
func IsInverseMonge(a Matrix) bool {
	return checkAdjacent(a, func(x00, x01, x10, x11 float64) bool {
		return x00+x11 >= x01+x10-mongeSlack(x00, x01, x10, x11)
	})
}

// mongeSlack returns an absolute tolerance proportional to the magnitude of
// the four entries, guarding the predicates against floating-point noise in
// geometrically-derived arrays (Euclidean distances etc.).
func mongeSlack(xs ...float64) float64 {
	m := 1.0
	for _, x := range xs {
		if a := math.Abs(x); a > m && !math.IsInf(x, 0) {
			m = a
		}
	}
	return 1e-9 * m
}

func checkAdjacent(a Matrix, ok2x2 func(x00, x01, x10, x11 float64) bool) bool {
	m, n := a.Rows(), a.Cols()
	for i := 0; i+1 < m; i++ {
		for j := 0; j+1 < n; j++ {
			if !ok2x2(a.At(i, j), a.At(i, j+1), a.At(i+1, j), a.At(i+1, j+1)) {
				return false
			}
		}
	}
	return true
}

// IsStaircasePattern reports whether the +Inf entries of a are closed to
// the right and downward: a[i,j] = +Inf implies a[i,l] = +Inf for l > j and
// a[k,j] = +Inf for k > i. Equivalently, the first-blocked-column function
// is nonincreasing in the row index.
func IsStaircasePattern(a Matrix) bool {
	m, n := a.Rows(), a.Cols()
	prev := n
	for i := 0; i < m; i++ {
		f := n
		for j := 0; j < n; j++ {
			inf := math.IsInf(a.At(i, j), 1)
			if inf && f == n {
				f = j
			}
			if !inf && f < n {
				return false // finite entry to the right of an Inf
			}
		}
		if f > prev {
			return false // blocked region not downward closed
		}
		prev = f
	}
	return true
}

// IsStaircaseMonge reports whether a is a staircase-Monge array: the +Inf
// pattern is a valid staircase and the Monge inequality holds on every 2x2
// minor whose four entries are all finite.
func IsStaircaseMonge(a Matrix) bool {
	if !IsStaircasePattern(a) {
		return false
	}
	return checkFiniteMinors(a, func(x00, x01, x10, x11 float64) bool {
		return x00+x11 <= x01+x10+mongeSlack(x00, x01, x10, x11)
	})
}

// IsStaircaseInverseMonge is the inverse-Monge analogue of
// IsStaircaseMonge. Its blocked entries are -Inf (the row-maxima form).
func IsStaircaseInverseMonge(a Matrix) bool {
	neg := Negate(a)
	if !IsStaircasePattern(neg) {
		return false
	}
	return checkFiniteMinors(a, func(x00, x01, x10, x11 float64) bool {
		return x00+x11 >= x01+x10-mongeSlack(x00, x01, x10, x11)
	})
}

// checkFiniteMinors verifies ok2x2 on all (not only adjacent) 2x2 minors
// whose entries are finite. Adjacency is not enough for staircase arrays:
// a blocked entry between two finite columns breaks the summation argument.
// Cost is O(m^2 n^2) and intended for tests on small arrays only.
func checkFiniteMinors(a Matrix, ok2x2 func(x00, x01, x10, x11 float64) bool) bool {
	m, n := a.Rows(), a.Cols()
	for i := 0; i < m; i++ {
		for k := i + 1; k < m; k++ {
			for j := 0; j < n; j++ {
				for l := j + 1; l < n; l++ {
					x00, x01 := a.At(i, j), a.At(i, l)
					x10, x11 := a.At(k, j), a.At(k, l)
					if isFinite(x00) && isFinite(x01) && isFinite(x10) && isFinite(x11) {
						if !ok2x2(x00, x01, x10, x11) {
							return false
						}
					}
				}
			}
		}
	}
	return true
}

func isFinite(x float64) bool { return !math.IsInf(x, 0) && !math.IsNaN(x) }

// IsTotallyMonotoneMax reports whether a is totally monotone with respect
// to row maxima: for i < k and j < l, a[i,j] < a[i,l] implies a[k,j] <
// a[k,l] (the falling-staircase condition used by SMAWK). Every
// inverse-Monge array is totally monotone in this sense, but not
// conversely.
func IsTotallyMonotoneMax(a Matrix) bool {
	m, n := a.Rows(), a.Cols()
	for i := 0; i < m; i++ {
		for k := i + 1; k < m; k++ {
			for j := 0; j < n; j++ {
				for l := j + 1; l < n; l++ {
					if a.At(i, j) < a.At(i, l) && a.At(k, j) >= a.At(k, l) {
						return false
					}
				}
			}
		}
	}
	return true
}

// IsTotallyMonotoneMin reports whether a is totally monotone with respect
// to row minima: for i < k and j < l, a[i,j] > a[i,l] implies a[k,j] >
// a[k,l]. Every Monge array is totally monotone in this sense.
func IsTotallyMonotoneMin(a Matrix) bool {
	m, n := a.Rows(), a.Cols()
	for i := 0; i < m; i++ {
		for k := i + 1; k < m; k++ {
			for j := 0; j < n; j++ {
				for l := j + 1; l < n; l++ {
					if a.At(i, j) > a.At(i, l) && a.At(k, j) <= a.At(k, l) {
						return false
					}
				}
			}
		}
	}
	return true
}
