package monge

// This file is the public face of the typed error contract (see
// internal/merr): every error returned by the library's error-returning
// entry points wraps exactly one of the sentinels below, so callers
// dispatch with errors.Is. The Must* variants of those entry points skip
// input validation and deliver the same conditions by panicking with the
// typed error instead; recover the panic value as an error to inspect it.

import "monge/internal/merr"

var (
	// ErrNotMonge reports an input array that violates the Monge
	// inequality a[i,j] + a[k,l] <= a[i,l] + a[k,j] (i < k, j < l).
	ErrNotMonge = merr.ErrNotMonge
	// ErrNotInverseMonge reports a violation of the reversed inequality.
	ErrNotInverseMonge = merr.ErrNotInverseMonge
	// ErrNotStaircase reports blocked entries that are not closed to the
	// right and downward.
	ErrNotStaircase = merr.ErrNotStaircase
	// ErrDimensionMismatch reports negative, ragged, out-of-range, or
	// otherwise incompatible shapes.
	ErrDimensionMismatch = merr.ErrDimensionMismatch
	// ErrMachineTooSmall reports a simulated machine with fewer processors
	// than the algorithm's allocation needs.
	ErrMachineTooSmall = merr.ErrMachineTooSmall
	// ErrWriteConflict reports a CREW write conflict (two processors wrote
	// one cell in one superstep).
	ErrWriteConflict = merr.ErrWriteConflict
	// ErrUnbalanced reports a transportation problem whose supply and
	// demand totals differ.
	ErrUnbalanced = merr.ErrUnbalanced
	// ErrCanceled reports a simulation stopped by its context; the error
	// also matches the context's own error (context.Canceled or
	// context.DeadlineExceeded) under errors.Is.
	ErrCanceled = merr.ErrCanceled
)
