package monge

// One benchmark per table row / figure / application of the paper. Each
// bench reports, besides wall-clock ns/op of the simulation, the charged
// parallel quantities as custom metrics:
//
//	steps/op        simulated parallel time of the machine
//	steps/lg(n)     the shape ratio against the claimed bound (flat = match)
//	work/op         processor-time product
//
// Run: go test -bench=. -benchmem   (see EXPERIMENTS.md for recorded runs)

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"monge/internal/core"
	"monge/internal/dp"
	"monge/internal/faults"
	"monge/internal/geom"
	"monge/internal/hcmonge"
	hc "monge/internal/hypercube"
	"monge/internal/marray"
	"monge/internal/obs"
	"monge/internal/pram"
	"monge/internal/rect"
	"monge/internal/serve"
	"monge/internal/smawk"
	"monge/internal/stredit"
	"monge/internal/transport"
)

var benchSizes = []int{256, 1024}

func reportMachine(b *testing.B, mach *pram.Machine, n int) {
	b.ReportMetric(float64(mach.Time())/float64(b.N), "steps/op")
	b.ReportMetric(float64(mach.Time())/float64(b.N)/float64(pram.Log2Ceil(n)), "steps/lgn")
	b.ReportMetric(float64(mach.Work())/float64(b.N), "work/op")
}

func reportNetwork(b *testing.B, total int64, n int) {
	b.ReportMetric(float64(total)/float64(b.N), "steps/op")
	b.ReportMetric(float64(total)/float64(b.N)/float64(pram.Log2Ceil(n)), "steps/lgn")
}

// --- Table 1.1: row maxima of an n x n Monge array -------------------------

func BenchmarkTable11_CRCW(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			a := marray.RandomMonge(rand.New(rand.NewSource(1)), n, n)
			mach := pram.New(pram.CRCW, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				core.MongeRowMaxima(mach, a)
			}
			reportMachine(b, mach, n)
		})
	}
}

func BenchmarkTable11_CREW(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			a := marray.RandomMonge(rand.New(rand.NewSource(1)), n, n)
			mach := pram.New(pram.CREW, n/pram.LogLog2Ceil(n))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				core.MongeRowMaxima(mach, a)
			}
			reportMachine(b, mach, n)
		})
	}
}

func BenchmarkTable11_Hypercube(b *testing.B) {
	for _, kind := range []hc.Kind{hc.Cube, hc.CCC, hc.Shuffle} {
		for _, n := range []int{256, 512} {
			b.Run(fmt.Sprintf("%s/n=%d", kind, n), func(b *testing.B) {
				b.ReportAllocs()
				a := marray.RandomMonge(rand.New(rand.NewSource(1)), n, n)
				v := idxVec(n)
				var total int64
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					_, mach := hcmonge.MongeRowMaxima(kind, v, v, func(x, y int) float64 { return a.At(x, y) })
					total += mach.Time()
				}
				reportNetwork(b, total, n)
			})
		}
	}
}

// Sequential baseline for the Table 1.1 problem (the Theta(m+n) bound).
func BenchmarkTable11_SMAWKSequential(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			a := marray.RandomMonge(rand.New(rand.NewSource(1)), n, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				smawk.MongeRowMaxima(a)
			}
		})
	}
}

// --- Table 1.2: row minima of an n x n staircase-Monge array ---------------

func BenchmarkTable12_CRCW(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			a := marray.RandomStaircaseMonge(rand.New(rand.NewSource(2)), n, n)
			mach := pram.New(pram.CRCW, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				core.StaircaseRowMinima(mach, a)
			}
			reportMachine(b, mach, n)
		})
	}
}

func BenchmarkTable12_CREW(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			a := marray.RandomStaircaseMonge(rand.New(rand.NewSource(2)), n, n)
			mach := pram.New(pram.CREW, n/pram.LogLog2Ceil(n))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				core.StaircaseRowMinima(mach, a)
			}
			reportMachine(b, mach, n)
		})
	}
}

func BenchmarkTable12_Hypercube(b *testing.B) {
	for _, n := range []int{256, 512} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			rng := rand.New(rand.NewSource(2))
			a := marray.RandomStaircaseMonge(rng, n, n)
			bounds := make([]int, n)
			for i := 0; i < n; i++ {
				bounds[i] = marray.BoundaryOf(a, i)
			}
			v := idxVec(n)
			var total int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, mach := hcmonge.StaircaseRowMinima(hc.Cube, v, bounds, v, func(x, y int) float64 { return a.At(x, y) })
				total += mach.Time()
			}
			reportNetwork(b, total, n)
		})
	}
}

func BenchmarkTable12_Sequential(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			a := marray.RandomStaircaseMonge(rand.New(rand.NewSource(2)), n, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				smawk.StaircaseRowMinima(a)
			}
		})
	}
}

// --- Table 1.3: tube maxima of an n x n x n Monge-composite array ----------

func BenchmarkTable13_CRCW(b *testing.B) {
	for _, n := range []int{64, 128} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			c := marray.RandomComposite(rand.New(rand.NewSource(3)), n, n, n)
			mach := pram.New(pram.CRCW, 2*n*n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				core.TubeMaxima(mach, c)
			}
			reportMachine(b, mach, n)
		})
	}
}

func BenchmarkTable13_CREW(b *testing.B) {
	for _, n := range []int{64, 128} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			c := marray.RandomComposite(rand.New(rand.NewSource(3)), n, n, n)
			mach := pram.New(pram.CREW, 2*n*n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				core.TubeMaxima(mach, c)
			}
			reportMachine(b, mach, n)
		})
	}
}

func BenchmarkTable13_Hypercube(b *testing.B) {
	for _, n := range []int{32, 64} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			c := marray.RandomComposite(rand.New(rand.NewSource(3)), n, n, n)
			var total int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, _, mach := hcmonge.TubeMaxima(hc.Cube, c)
				total += mach.Time()
			}
			reportNetwork(b, total, n)
		})
	}
}

func BenchmarkTable13_Sequential(b *testing.B) {
	for _, n := range []int{64, 128} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			c := marray.RandomComposite(rand.New(rand.NewSource(3)), n, n, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				smawk.TubeMaxima(c)
			}
		})
	}
}

// --- Figure 1.1: all-farthest neighbors ------------------------------------

func BenchmarkFigure11_Farthest(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("smawk/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			p, q := marray.ConvexChainPair(rand.New(rand.NewSource(4)), n, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				geom.AllFarthestNeighbors(p, q)
			}
		})
		b.Run(fmt.Sprintf("brute/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			p, q := marray.ConvexChainPair(rand.New(rand.NewSource(4)), n, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				geom.AllFarthestNeighborsBrute(p, q)
			}
		})
		b.Run(fmt.Sprintf("crcw/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			p, q := marray.ConvexChainPair(rand.New(rand.NewSource(4)), n, n)
			mach := pram.New(pram.CRCW, 2*n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				geom.AllFarthestNeighborsPRAM(mach, p, q)
			}
			reportMachine(b, mach, n)
		})
	}
}

// --- Figure 2.2 structure: the staircase decomposition itself --------------

func BenchmarkFigure22_Decompose(b *testing.B) {
	// The Lemma 2.2 machinery at work: staircase search dominated by the
	// feasible-region decomposition, with the ANSV primitive benchmarked
	// alongside (the paper's allocation tool).
	n := 1024
	b.Run("ansv-parallel", func(b *testing.B) {
		b.ReportAllocs()
		vals := make([]float64, n)
		rng := rand.New(rand.NewSource(5))
		for i := range vals {
			vals[i] = rng.Float64()
		}
		mach := pram.New(pram.CREW, n)
		arr := pram.NewArray[float64](mach, n)
		arr.Fill(vals)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			pram.ANSV(mach, arr)
		}
		reportMachine(b, mach, n)
	})
	b.Run("ansv-seq", func(b *testing.B) {
		b.ReportAllocs()
		vals := make([]float64, n)
		rng := rand.New(rand.NewSource(5))
		for i := range vals {
			vals[i] = rng.Float64()
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			pram.ANSVSeq(vals)
		}
	})
}

// --- Applications -----------------------------------------------------------

func BenchmarkApp1_EmptyRect(b *testing.B) {
	for _, n := range []int{256, 1024} {
		pts := make([]rect.Point, n)
		rng := rand.New(rand.NewSource(6))
		for i := range pts {
			pts[i] = rect.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}
		}
		bounds := rect.Rect{X0: 0, Y0: 0, X1: 1000, Y1: 1000}
		b.Run(fmt.Sprintf("exact-seq/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rect.LargestEmptyRect(pts, bounds)
			}
		})
		b.Run(fmt.Sprintf("anchored-crcw/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			mach := pram.New(pram.CRCW, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rect.LargestAnchoredRect(mach, pts, bounds)
			}
			reportMachine(b, mach, n)
		})
	}
}

func BenchmarkApp2_MaxRect(b *testing.B) {
	for _, n := range benchSizes {
		pts := make([]rect.Point, n)
		rng := rand.New(rand.NewSource(7))
		for i := range pts {
			pts[i] = rect.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}
		}
		b.Run(fmt.Sprintf("monge-seq/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rect.MaxCornerRect(pts)
			}
		})
		b.Run(fmt.Sprintf("brute/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rect.MaxCornerRectBrute(pts)
			}
		})
		b.Run(fmt.Sprintf("crcw/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			mach := pram.New(pram.CRCW, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rect.MaxCornerRectPRAM(mach, pts)
			}
			reportMachine(b, mach, n)
		})
	}
}

func BenchmarkApp3_Neighbors(b *testing.B) {
	for _, n := range []int{128, 512} {
		p, q, ob := geom.ObstructedChains(rand.New(rand.NewSource(8)), n, n)
		obs := []geom.Polygon{ob}
		for _, kind := range []geom.NeighborKind{geom.NearestInvisible, geom.FarthestInvisible} {
			b.Run(fmt.Sprintf("%s/n=%d", kind, n), func(b *testing.B) {
				b.ReportAllocs()
				mach := pram.New(pram.CRCW, 2*n)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					geom.Neighbors(kind, mach, p, q, obs)
				}
				reportMachine(b, mach, n)
			})
		}
		b.Run(fmt.Sprintf("brute/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				geom.NeighborsBrute(geom.NearestInvisible, p, q, obs)
			}
		})
	}
}

func BenchmarkApp4_StringEdit(b *testing.B) {
	c := stredit.UnitCosts()
	for _, n := range []int{64, 128} {
		rng := rand.New(rand.NewSource(9))
		x := randStr(rng, n)
		y := randStr(rng, n)
		b.Run(fmt.Sprintf("wagner-fischer/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				stredit.Distance(x, y, c)
			}
		})
		b.Run(fmt.Sprintf("monge-pram/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			mach := pram.New(pram.CRCW, n*n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				stredit.DistancePRAM(mach, x, y, c)
			}
			reportMachine(b, mach, n)
		})
		b.Run(fmt.Sprintf("wavefront-pram/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			mach := pram.New(pram.CRCW, n*n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				stredit.DistanceWavefront(mach, x, y, c)
			}
			reportMachine(b, mach, n)
		})
	}
	b.Run("hypercube/n=32", func(b *testing.B) {
		b.ReportAllocs()
		rng := rand.New(rand.NewSource(9))
		x := randStr(rng, 32)
		y := randStr(rng, 32)
		var total int64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_, rep := stredit.DistanceHypercube(hc.Cube, x, y, c)
			total += rep.Time
		}
		reportNetwork(b, total, 32)
	})
}

// --- Extensions: Monge-powered DP and the transportation greedy ------------

func BenchmarkExtension_LWS(b *testing.B) {
	n := 4096
	rng := rand.New(rand.NewSource(10))
	node := make([]float64, n+1)
	for i := range node {
		node[i] = rng.Float64()
	}
	w := func(i, j int) float64 {
		d := float64(j - i)
		return 3*d*d/float64(n) + node[i] // convex in the gap: Monge
	}
	b.Run("concave-stack", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			dp.LWS(n, w)
		}
	})
	b.Run("quadratic", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			dp.LWSBrute(n, w)
		}
	})
}

func BenchmarkExtension_Transport(b *testing.B) {
	m, n := 512, 512
	rng := rand.New(rand.NewSource(11))
	a := make([]float64, m)
	bb := make([]float64, n)
	total := 0.0
	for i := range a {
		a[i] = float64(1 + rng.Intn(50))
		total += a[i]
	}
	per := total / float64(n)
	for j := range bb {
		bb[j] = per
	}
	c := marray.RandomMonge(rng, m, n)
	b.Run("hoffman-greedy", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			transport.MustGreedy(a, bb, c)
		}
	})
}

func idxVec(n int) []int {
	v := make([]int, n)
	for i := range v {
		v[i] = i
	}
	return v
}

func randStr(rng *rand.Rand, n int) string {
	bs := make([]rune, n)
	for i := range bs {
		bs[i] = rune('a' + rng.Intn(4))
	}
	return string(bs)
}

// --- Runtime: the persistent worker pool under row-minima workloads --------

// BenchmarkRuntime_RowMinimaWorkers runs the Table 1.1 CRCW workload with
// explicit pool sizes. The runtime's chunking contract makes the charged
// metrics identical across worker counts (TestWorkerCountDeterminism pins
// this); what varies is simulator wall-clock, which is the overhead this
// benchmark watches. Compare against BenchmarkStepLoop_* in internal/exec
// for the isolated dispatch cost.
func BenchmarkRuntime_RowMinimaWorkers(b *testing.B) {
	for _, n := range []int{512, 1024, 4096} {
		for _, w := range []int{1, 4} {
			b.Run(fmt.Sprintf("n=%d/workers=%d", n, w), func(b *testing.B) {
				b.ReportAllocs()
				a := marray.RandomMonge(rand.New(rand.NewSource(1)), n, n)
				mach := pram.New(pram.CRCW, n)
				mach.SetWorkers(w)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					core.RowMinima(mach, a)
				}
				reportMachine(b, mach, n)
			})
		}
	}
}

// --- Ablations: the design choices DESIGN.md calls out ---------------------

// BenchmarkAblation_LeafReduction isolates the CRCW doubly-logarithmic
// tournament against the CREW binary tree in the searching recursion's
// leaves: same declared processors, same array, different machine mode.
func BenchmarkAblation_LeafReduction(b *testing.B) {
	n := 2048
	a := marray.RandomMonge(rand.New(rand.NewSource(12)), n, n)
	for _, mode := range []pram.Mode{pram.CRCW, pram.CREW} {
		b.Run(mode.String(), func(b *testing.B) {
			b.ReportAllocs()
			mach := pram.New(mode, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				core.RowMinima(mach, a)
			}
			reportMachine(b, mach, n)
		})
	}
}

// BenchmarkAblation_AllocationVsSort contrasts the closed-form
// prefix-scan processor allocation the core algorithms use against the
// bitonic sort the paper's Lemma 2.2 mentions ("ANSV followed by
// sorting"): the sort costs an extra lg n factor in charged steps, which
// is why the implementation avoids it.
func BenchmarkAblation_AllocationVsSort(b *testing.B) {
	n := 4096
	rng := rand.New(rand.NewSource(13))
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = rng.Float64()
	}
	b.Run("prefix-scan-allocation", func(b *testing.B) {
		b.ReportAllocs()
		mach := pram.New(pram.CREW, n)
		arr := pram.NewArray[float64](mach, n)
		arr.Fill(vals)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			pram.Scan(mach, arr, func(x, y float64) float64 { return x + y })
		}
		reportMachine(b, mach, n)
	})
	b.Run("bitonic-sort-allocation", func(b *testing.B) {
		b.ReportAllocs()
		mach := pram.New(pram.CREW, n)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			pram.SortPadded(mach, vals, func(x, y float64) bool { return x < y }, math.Inf(1))
		}
		reportMachine(b, mach, n)
	})
}

// --- Robustness: disabled-fault overhead ------------------------------------

// BenchmarkRowMinima measures what the fault/cancellation machinery costs
// when it is NOT in use — the acceptance bar is <2% on the default
// (faults=off) configuration versus the pre-robustness runtime, which the
// armed-hooks sub-benchmark brackets from above: "off" takes the fast
// dispatch path (one nil-injector check per superstep), "armed" attaches
// a never-cancelled context so every superstep goes through the
// cancellable Run dispatch with a nil stall predicate. Recorded in
// EXPERIMENTS.md under "Fault injection".
func BenchmarkRowMinima(b *testing.B) {
	const n = 1024
	a := marray.RandomMonge(rand.New(rand.NewSource(1)), n, n)
	// faults=off also runs at n=4096: that is the allocation-profile row
	// the scratch arenas are gated on (see BENCH_alloc.json and the
	// "Allocation profile" section of EXPERIMENTS.md).
	for _, fn := range []int{n, 4096} {
		a := marray.RandomMonge(rand.New(rand.NewSource(1)), fn, fn)
		b.Run(fmt.Sprintf("faults=off/n=%d", fn), func(b *testing.B) {
			b.ReportAllocs()
			mach := pram.New(pram.CRCW, fn)
			mach.SetFaults(nil)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				core.RowMinima(mach, a)
			}
			reportMachine(b, mach, fn)
		})
	}
	b.Run("hooks=armed", func(b *testing.B) {
		b.ReportAllocs()
		mach := pram.New(pram.CRCW, n)
		mach.SetFaults(nil)
		mach.SetContext(context.Background())
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			core.RowMinima(mach, a)
		}
		reportMachine(b, mach, n)
	})
	b.Run("faults=0.05", func(b *testing.B) {
		b.ReportAllocs()
		mach := pram.New(pram.CRCW, n)
		mach.SetFaults(faults.New(1, 0.05))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			core.RowMinima(mach, a)
		}
		reportMachine(b, mach, n)
	})
}

// --- Observability: disabled-observer overhead ------------------------------

// BenchmarkObsOverhead guards the "free when off" contract of the
// observability layer: with no global observer installed, every
// instrumentation hook in the machines and the worker pool is a single
// nil check (pool path: one atomic pointer load), so the obs=off
// sub-benchmark must match the pre-observability runtime. obs=on
// brackets the cost of live counters from above; tracing is measured
// separately since span capture allocates. Recorded in EXPERIMENTS.md
// under "Observability".
func BenchmarkObsOverhead(b *testing.B) {
	const n = 1024
	a := marray.RandomMonge(rand.New(rand.NewSource(1)), n, n)
	prev := obs.Global()
	defer obs.SetGlobal(prev)
	run := func(b *testing.B) {
		mach := pram.New(pram.CRCW, n)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			core.RowMinima(mach, a)
		}
		reportMachine(b, mach, n)
	}
	b.Run("obs=off", func(b *testing.B) {
		b.ReportAllocs()
		obs.SetGlobal(nil)
		run(b)
	})
	b.Run("obs=on", func(b *testing.B) {
		b.ReportAllocs()
		obs.SetGlobal(obs.NewObserver())
		run(b)
	})
	b.Run("obs=on+trace", func(b *testing.B) {
		b.ReportAllocs()
		o := obs.NewObserver()
		o.EnableTracing(0)
		obs.SetGlobal(o)
		run(b)
	})
}

// --- Concurrent serving: DriverPool throughput -----------------------------

// BenchmarkDriverPoolThroughput measures end-to-end queries/sec of the
// sharded serving layer on an n=1024 row-minima mix (implicit-backed, so
// the per-shard tile caches participate), at 1, 2, 4, and GOMAXPROCS
// workers. The headline metric is queries/s; wall-clock scaling across
// the worker ladder is what BENCH_throughput.json records and CI gates.
// On a single-core runner the ladder is flat by construction — the
// recorded baseline carries the cpu count for exactly that reason.
func BenchmarkDriverPoolThroughput(b *testing.B) {
	driverPoolThroughput(b, BackendPRAM)
}

// BenchmarkDriverPoolThroughputNative is the same serve mix on the
// native execution backend. The two ladders share one schema in
// BENCH_throughput.json; the CI throughput-smoke job gates native w1 at
// >= the recorded multiple of PRAM w1 from the same fresh run (the
// simulator's superstep accounting dominates its runtime, so the ratio
// is core-count independent).
func BenchmarkDriverPoolThroughputNative(b *testing.B) {
	driverPoolThroughput(b, BackendNative)
}

func driverPoolThroughput(b *testing.B, be Backend) {
	const n = 1024
	const queriesPerOp = 32
	rng := rand.New(rand.NewSource(1))
	// Distinct matrices, round-robined, so shards can't ride one warm
	// tile working set.
	mats := make([]Matrix, 8)
	for i := range mats {
		d := marray.RandomMonge(rng, n, n)
		mats[i] = marray.Func{M: n, N: n, F: d.At}
	}
	ladder := []int{1, 2, 4}
	if gmp := runtime.GOMAXPROCS(0); gmp != 1 && gmp != 2 && gmp != 4 {
		ladder = append(ladder, gmp)
	}
	for _, w := range ladder {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			pool := serve.New(pram.CRCW, serve.Options{Workers: w, Backend: be})
			defer pool.Close()
			tickets := make([]*serve.Ticket, queriesPerOp)
			b.ResetTimer()
			start := time.Now()
			for i := 0; i < b.N; i++ {
				for q := 0; q < queriesPerOp; q++ {
					t, err := pool.Submit(serve.Query{Kind: serve.RowMinima, A: mats[q%len(mats)]})
					if err != nil {
						b.Fatal(err)
					}
					tickets[q] = t
				}
				for _, t := range tickets {
					if res := t.Result(); res.Err != nil {
						b.Fatal(res.Err)
					}
				}
			}
			elapsed := time.Since(start)
			b.StopTimer()
			b.ReportMetric(float64(b.N*queriesPerOp)/elapsed.Seconds(), "queries/s")
			st := pool.Stats()
			b.ReportMetric(float64(st.Imbalance), "imbalance")
			if probes := st.CacheHits + st.CacheMisses; probes > 0 {
				b.ReportMetric(100*float64(st.CacheHits)/float64(probes), "cache-hit-%")
			}
		})
	}
}

// BenchmarkBackendKernels is the per-kernel PRAM-vs-native latency and
// allocation comparison recorded in EXPERIMENTS.md ("Execution
// backends"): each of the three query kinds runs through a steady-state
// BatchDriver on both backends, same inputs, same driver seam. The
// native rows are the serving numbers; the PRAM rows price the
// simulation (charged supersteps, write-buffer bookkeeping) that the
// conformance oracle pays on every query.
func BenchmarkBackendKernels(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	const n = 1024
	const tubeN = 64
	a := marray.RandomMonge(rng, n, n)
	s := marray.RandomStaircaseMonge(rng, n, n)
	c := marray.RandomComposite(rng, tubeN, tubeN, tubeN)
	for _, be := range []Backend{BackendPRAM, BackendNative} {
		d := NewBatchDriverBackend(CRCW, be)
		defer d.Close()
		b.Run(fmt.Sprintf("backend=%s/smawk/n=%d", be, n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := d.RowMinima(a); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("backend=%s/staircase/n=%d", be, n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := d.StaircaseRowMinima(s); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("backend=%s/tube/n=%d", be, tubeN), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := d.TubeMaxima(c); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBackendKernelScans covers the shapes the branchless scan
// pass targets, through the same BatchDriver seam as
// BenchmarkBackendKernels: "narrow" takes the whole-row dense scan
// fast path (n <= smawk.DenseScanCols, no SMAWK recursion on native),
// and the two "huge-aspect" rows pin the merge-path dispatch — a 1-row
// input must split by column segments instead of serializing, and a
// 1-column input must still answer through the row-block path. The
// isolated kernel-vs-scalar numbers live in internal/smawk's
// BenchmarkScanKernels; these rows price the same kernels end-to-end.
func BenchmarkBackendKernelScans(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	narrow := marray.RandomMonge(rng, 4096, 32)
	wide := marray.RandomMonge(rng, 1, 1<<16)
	tall := marray.RandomMonge(rng, 1<<16, 1)
	for _, be := range []Backend{BackendPRAM, BackendNative} {
		d := NewBatchDriverBackend(CRCW, be)
		defer d.Close()
		for _, tc := range []struct {
			name string
			a    Matrix
		}{
			{"narrow/4096x32", narrow},
			{"huge-aspect/1x65536", wide},
			{"huge-aspect/65536x1", tall},
		} {
			b.Run(fmt.Sprintf("backend=%s/%s", be, tc.name), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := d.RowMinima(tc.a); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
