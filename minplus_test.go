package monge

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"math/rand"
	"os"
	"testing"

	"monge/internal/marray"
	"monge/internal/minplus"
)

// BENCH_minplus.json (schema monge-minplus/v1) is the committed
// (min,+) multiplication baseline, recorded by
//
//	mongebench -minplus -minplus-out BENCH_minplus.json
//
// For each ladder size it records the engine and naive O(n³) multiply
// latencies (naive skipped past n=1024), the product's run-length core
// size, and the M-link solver against its O(n²M) reference DP.
// TestMinPlusBaseline keeps the file honest and enforces the
// acceptance: at n = gate_n the SMAWK-backed engine must beat the naive
// multiply by at least min_engine_over_naive. The reduction is
// algorithmic — O(n²) vs O(n³) entry evaluations — so the ratio holds
// on any machine; absolute nanoseconds are not gated.
type minplusBaseline struct {
	Schema             string  `json:"schema"`
	CPUs               int     `json:"cpus"`
	Seed               int64   `json:"seed"`
	GateN              int     `json:"gate_n"`
	MinEngineOverNaive float64 `json:"min_engine_over_naive"`
	Points             []struct {
		N               int     `json:"n"`
		EngineNS        int64   `json:"engine_ns"`
		NaiveNS         int64   `json:"naive_ns"`
		EngineOverNaive float64 `json:"engine_over_naive"`
		Runs            int     `json:"runs"`
		DenseCells      int     `json:"dense_cells"`
		MLinkM          int     `json:"mlink_m"`
		MLinkNS         int64   `json:"mlink_ns"`
		MLinkRefNS      int64   `json:"mlink_ref_ns"`
		MLinkSpeedup    float64 `json:"mlink_speedup"`
	} `json:"points"`
}

// TestMinPlusBaseline validates the committed (min,+) baseline: a
// complete, self-consistent ladder whose gate size demonstrates the
// point of the engine — a product an order of magnitude (and more)
// cheaper than the cubic scan.
func TestMinPlusBaseline(t *testing.T) {
	raw, err := os.ReadFile("BENCH_minplus.json")
	if err != nil {
		t.Fatalf("read baseline: %v", err)
	}
	var b minplusBaseline
	if err := json.Unmarshal(raw, &b); err != nil {
		t.Fatalf("parse BENCH_minplus.json: %v", err)
	}
	if b.Schema != "monge-minplus/v1" {
		t.Fatalf("BENCH_minplus.json schema %q, want monge-minplus/v1", b.Schema)
	}
	if b.CPUs < 1 {
		t.Fatalf("baseline provenance incomplete: cpus=%d", b.CPUs)
	}
	if b.MinEngineOverNaive < 20 {
		t.Fatalf("min_engine_over_naive %g weakens the committed acceptance bound of 20", b.MinEngineOverNaive)
	}
	wantN := []int{256, 1024, 4096}
	if len(b.Points) != len(wantN) {
		t.Fatalf("%d ladder sizes, want %d (256, 1024, 4096)", len(b.Points), len(wantN))
	}
	gateSeen := false
	for i, p := range b.Points {
		if p.N != wantN[i] {
			t.Fatalf("point %d has n=%d, want %d", i, p.N, wantN[i])
		}
		if p.EngineNS <= 0 {
			t.Errorf("n=%d engine_ns=%d, want > 0", p.N, p.EngineNS)
		}
		if p.DenseCells != p.N*p.N {
			t.Errorf("n=%d dense_cells=%d, want n²=%d", p.N, p.DenseCells, p.N*p.N)
		}
		// The core is at least one run per output row and never denser
		// than the dense representation it replaces.
		if p.Runs < p.N || p.Runs > p.DenseCells {
			t.Errorf("n=%d runs=%d outside [n, n²]", p.N, p.Runs)
		}
		if p.NaiveNS > 0 {
			want := float64(p.NaiveNS) / float64(p.EngineNS)
			if diff := p.EngineOverNaive - want; diff > 1e-6 || diff < -1e-6 {
				t.Errorf("n=%d engine_over_naive %g inconsistent with naive/engine = %g",
					p.N, p.EngineOverNaive, want)
			}
		}
		if p.MLinkM <= 0 || p.MLinkNS <= 0 || p.MLinkRefNS <= 0 {
			t.Errorf("n=%d M-link columns incomplete: m=%d ns=%d ref_ns=%d",
				p.N, p.MLinkM, p.MLinkNS, p.MLinkRefNS)
		}
		if want := float64(p.MLinkRefNS) / float64(p.MLinkNS); math.Abs(p.MLinkSpeedup-want) > 1e-6 {
			t.Errorf("n=%d mlink_speedup %g inconsistent with ref/engine = %g", p.N, p.MLinkSpeedup, want)
		}
		if p.N == b.GateN {
			gateSeen = true
			if p.NaiveNS <= 0 {
				t.Errorf("gate size n=%d has no naive measurement", p.N)
			}
			if p.EngineOverNaive < b.MinEngineOverNaive {
				t.Errorf("n=%d engine_over_naive %.1fx below the committed bound %.0fx — re-record BENCH_minplus.json",
					p.N, p.EngineOverNaive, b.MinEngineOverNaive)
			}
		}
	}
	if !gateSeen {
		t.Fatalf("gate_n=%d is not a ladder size", b.GateN)
	}
}

// TestMinPlusFacade covers the public (min,+) surface end to end:
// dense and staircase factors against the naive oracle with index-exact
// witnesses, the core representation, and the typed error contract.
func TestMinPlusFacade(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for _, tc := range []struct {
		name string
		a, b Matrix
	}{
		{"dense", marray.RandomMongeInt(rng, 18, 23, 6), marray.RandomMongeInt(rng, 23, 15, 6)},
		{"staircase", marray.RandomMongeInt(rng, 14, 20, 5), marray.RandomStaircaseMongeInt(rng, 20, 17, 5)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			p, err := MinPlus(tc.a, tc.b)
			if err != nil {
				t.Fatalf("MinPlus: %v", err)
			}
			want, wit := minplus.MultiplyNaive(tc.a, tc.b)
			for i := 0; i < tc.a.Rows(); i++ {
				for k := 0; k < tc.b.Cols(); k++ {
					if p.At(i, k) != want.At(i, k) || p.Witness(i, k) != wit[i][k] {
						t.Fatalf("(%d,%d): got (%g, %d), want (%g, %d)",
							i, k, p.At(i, k), p.Witness(i, k), want.At(i, k), wit[i][k])
					}
				}
			}
			if p.Runs() < tc.a.Rows() || p.Runs() > tc.a.Rows()*tc.b.Cols() {
				t.Fatalf("core size %d outside [rows, rows*cols]", p.Runs())
			}
		})
	}

	// Typed errors, not panics: non-Monge factors and inner mismatch.
	notMonge := FromRows([][]float64{{5, 0}, {0, 5}})
	ok2 := FromRows([][]float64{{0, 1}, {1, 0}})
	if _, err := MinPlus(notMonge, ok2); !errors.Is(err, ErrNotMonge) {
		t.Fatalf("non-Monge a: err=%v, want ErrNotMonge", err)
	}
	if _, err := MinPlus(ok2, notMonge); !errors.Is(err, ErrNotMonge) {
		t.Fatalf("non-Monge b: err=%v, want ErrNotMonge", err)
	}
	a3 := marray.RandomMongeInt(rng, 4, 7, 3)
	b3 := marray.RandomMongeInt(rng, 6, 5, 3)
	if _, err := MinPlus(a3, b3); !errors.Is(err, ErrDimensionMismatch) {
		t.Fatalf("inner mismatch: err=%v, want ErrDimensionMismatch", err)
	}
}

// mlinkTestWeight is a convex-gap Monge weight with integer values, so
// every solver strategy's float sums are exact.
func mlinkTestWeight(rng *rand.Rand, n int) LinkWeight {
	off := make([]float64, n+1)
	for i := range off {
		off[i] = float64(rng.Intn(128))
	}
	return func(i, j int) float64 {
		g := float64(j - i)
		return off[i] + off[j] + g*g
	}
}

// TestMLinkPathFacade covers the public M-link surface: costs and path
// shapes against the reference DP across the strategy switchover, and
// the screen/validation error contract.
func TestMLinkPathFacade(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	n := 30
	w := mlinkTestWeight(rng, n)
	for _, M := range []int{1, 2, 7, 13, 30} {
		cost, path, err := MLinkPath(n, w, M)
		if err != nil {
			t.Fatalf("M=%d: %v", M, err)
		}
		refCost, _ := minplus.MLinkBrute(n, minplus.Weight(w), M)
		if math.Abs(cost-refCost) > 1e-6*(1+math.Abs(refCost)) {
			t.Fatalf("M=%d: cost %g, reference %g", M, cost, refCost)
		}
		if len(path) != M+1 || path[0] != 0 || path[M] != n {
			t.Fatalf("M=%d: malformed path %v", M, path)
		}
		for s := 1; s <= M; s++ {
			if path[s] <= path[s-1] {
				t.Fatalf("M=%d: path not strictly increasing: %v", M, path)
			}
		}
	}

	// The sampled screen rejects a concave (non-Monge) gap weight.
	concave := LinkWeight(func(i, j int) float64 {
		g := float64(j - i)
		return -g * g
	})
	if _, _, err := MLinkPath(n, concave, 3); !errors.Is(err, ErrNotMonge) {
		t.Fatalf("concave weight: err=%v, want ErrNotMonge", err)
	}
	if _, _, err := MLinkPath(n, nil, 3); !errors.Is(err, ErrDimensionMismatch) {
		t.Fatalf("nil weight: err=%v, want ErrDimensionMismatch", err)
	}
	if _, _, err := MLinkPath(0, w, 3); !errors.Is(err, ErrDimensionMismatch) {
		t.Fatalf("n=0: err=%v, want ErrDimensionMismatch", err)
	}
	// More links than nodes: unreachable, +Inf and no path, not an error.
	cost, path, err := MLinkPath(5, w, 9)
	if err != nil || !math.IsInf(cost, 1) || path != nil {
		t.Fatalf("M>n: (%g, %v, %v), want (+Inf, nil, nil)", cost, path, err)
	}

	// MustMinPlus / MustMLinkPath happy paths agree with the checked API.
	p := MustMinPlus(marray.RandomMongeInt(rng, 9, 9, 4), marray.RandomMongeInt(rng, 9, 9, 4))
	if p.Rows() != 9 || p.Cols() != 9 {
		t.Fatalf("MustMinPlus product %dx%d, want 9x9", p.Rows(), p.Cols())
	}
	mc, mp := MustMLinkPath(n, w, 4)
	cc, cp, err := MLinkPath(n, w, 4)
	if err != nil || mc != cc || len(mp) != len(cp) {
		t.Fatalf("Must vs checked: (%g, %v) vs (%g, %v, %v)", mc, mp, cc, cp, err)
	}
}

// TestDriverPoolMinPlus covers the pool surface of the (min,+) kinds:
// tickets, the Do lifecycle with its request builders, calling-
// goroutine screens, and per-query cancellation.
func TestDriverPoolMinPlus(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	a := marray.RandomMongeInt(rng, 16, 21, 5)
	b := marray.RandomMongeInt(rng, 21, 13, 5)
	n := 24
	w := mlinkTestWeight(rng, n)

	dp := NewDriverPool(CRCW, 2)
	defer dp.Close()

	tk, err := dp.MinPlus(a, b)
	if err != nil {
		t.Fatal(err)
	}
	res := tk.Result()
	if res.Err != nil || res.Prod == nil {
		t.Fatalf("pool minplus: %+v", res)
	}
	want, wit := minplus.MultiplyNaive(a, b)
	for i := 0; i < a.Rows(); i++ {
		for k := 0; k < b.Cols(); k++ {
			if res.Prod.At(i, k) != want.At(i, k) || res.Prod.Witness(i, k) != wit[i][k] {
				t.Fatalf("pool product diverges from naive at (%d,%d)", i, k)
			}
		}
	}

	tk, err = dp.MLinkPath(n, w, 5)
	if err != nil {
		t.Fatal(err)
	}
	res = tk.Result()
	refCost, _ := minplus.MLinkBrute(n, minplus.Weight(w), 5)
	if res.Err != nil || math.Abs(res.Cost-refCost) > 1e-6*(1+math.Abs(refCost)) || len(res.Idx) != 6 {
		t.Fatalf("pool mlink: %+v, reference cost %g", res, refCost)
	}

	if r := dp.Do(context.Background(), MinPlusRequest(a, b)); r.Err != nil || r.Prod == nil ||
		r.Prod.At(2, 3) != want.At(2, 3) {
		t.Fatalf("Do minplus: %+v", r)
	}
	if r := dp.Do(context.Background(), MLinkPathRequest(n, w, 5)); r.Err != nil ||
		math.Abs(r.Cost-refCost) > 1e-6*(1+math.Abs(refCost)) {
		t.Fatalf("Do mlink: %+v", r)
	}

	// Screens run on the calling goroutine: bad inputs never enqueue.
	notMonge := FromRows([][]float64{{5, 0}, {0, 5}})
	if _, err := dp.MinPlus(notMonge, b); !errors.Is(err, ErrNotMonge) {
		t.Fatalf("pool non-Monge: err=%v, want ErrNotMonge", err)
	}
	if _, err := dp.MLinkPath(n, nil, 3); !errors.Is(err, ErrDimensionMismatch) {
		t.Fatalf("pool nil weight: err=%v, want ErrDimensionMismatch", err)
	}
	if r := dp.Do(context.Background(), MinPlusRequest(notMonge, b)); !errors.Is(r.Err, ErrNotMonge) {
		t.Fatalf("Do non-Monge: err=%v, want ErrNotMonge", r.Err)
	}

	// A canceled per-query context resolves the ticket with ErrCanceled.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	tk, err = dp.MinPlusCtx(ctx, a, b)
	if err == nil {
		if res := tk.Result(); !errors.Is(res.Err, ErrCanceled) {
			t.Fatalf("canceled ctx: err=%v, want ErrCanceled", res.Err)
		}
	} else if !errors.Is(err, ErrCanceled) {
		t.Fatalf("canceled submit: err=%v, want ErrCanceled", err)
	}
	tk, err = dp.MLinkPathCtx(ctx, n, w, 3)
	if err == nil {
		if res := tk.Result(); !errors.Is(res.Err, ErrCanceled) {
			t.Fatalf("canceled mlink ctx: err=%v, want ErrCanceled", res.Err)
		}
	} else if !errors.Is(err, ErrCanceled) {
		t.Fatalf("canceled mlink submit: err=%v, want ErrCanceled", err)
	}
}
