package monge

// This file exposes the paper's applications through the public API; the
// implementations live in the internal packages listed in DESIGN.md.

import (
	"monge/internal/dp"
	"monge/internal/geom"
	hc "monge/internal/hypercube"
	"monge/internal/pram"
	"monge/internal/rect"
	"monge/internal/smawk"
	"monge/internal/stredit"
	"monge/internal/transport"
)

// --- Figure 1.1 and application 3: convex-polygon neighbor problems --------

// Polygon is a strictly convex polygon in counterclockwise order.
type Polygon = geom.Polygon

// NeighborKind selects one of the four application-3 problems.
type NeighborKind = geom.NeighborKind

// The four neighbor problems of application 3.
const (
	NearestVisible    = geom.NearestVisible
	NearestInvisible  = geom.NearestInvisible
	FarthestVisible   = geom.FarthestVisible
	FarthestInvisible = geom.FarthestInvisible
)

// NeighborResult carries the per-vertex answers and solver statistics.
type NeighborResult = geom.NeighborResult

// AllFarthestNeighbors solves the Figure 1.1 problem: for each vertex of
// chain p, the farthest vertex of chain q (both chains of one convex
// polygon), in Theta(m+n) time.
func AllFarthestNeighbors(p, q []Point) []int {
	return geom.AllFarthestNeighbors(p, q)
}

// AllFarthestNeighborsPRAM is the parallel version on the given machine.
func AllFarthestNeighborsPRAM(mach *PRAM, p, q []Point) []int {
	return geom.AllFarthestNeighborsPRAM(mach, p, q)
}

// Neighbors solves a visible/invisible neighbor problem for two chains of
// one convex polygon under the given convex obstacles; mach == nil solves
// sequentially (see the geom package for the structure this relies on).
func Neighbors(kind NeighborKind, mach *PRAM, p, q []Point, obstacles []Polygon) NeighborResult {
	return geom.Neighbors(kind, mach, p, q, obstacles)
}

// --- Applications 1 and 2: rectangle problems -------------------------------

// Rect is an axis-parallel rectangle.
type Rect = rect.Rect

// MaxCornerRect solves application 2: the largest-area rectangle with two
// of the points as opposite corners. Theta(n lg n) sequential.
func MaxCornerRect(pts []Point) (area float64, i, j int) {
	return rect.MaxCornerRect(pts)
}

// MaxCornerRectPRAM is the Theta(lg n)-step CRCW version.
func MaxCornerRectPRAM(mach *PRAM, pts []Point) (area float64, i, j int) {
	return rect.MaxCornerRectPRAM(mach, pts)
}

// LargestEmptyRect solves application 1 exactly: the largest axis-parallel
// rectangle inside bounds with no point in its interior. O(n^2).
func LargestEmptyRect(pts []Point, bounds Rect) Rect {
	return rect.LargestEmptyRect(pts, bounds)
}

// LargestAnchoredRect solves the boundary-anchored families of application
// 1 in O(lg n) parallel steps via the ANSV/histogram machinery.
func LargestAnchoredRect(mach *PRAM, pts []Point, bounds Rect) Rect {
	return rect.LargestAnchoredRect(mach, pts, bounds)
}

// --- Application 4: string editing ------------------------------------------

// EditCosts defines the delete/insert/substitute cost model.
type EditCosts = stredit.Costs

// UnitEditCosts is the Levenshtein model.
func UnitEditCosts() EditCosts { return stredit.UnitCosts() }

// EditDistance is the Wagner-Fischer O(st) baseline.
func EditDistance(x, y string, c EditCosts) float64 { return stredit.Distance(x, y, c) }

// EditDistancePRAM runs the grid-DAG Monge engine on the given machine
// (O(lg s lg t) charged time).
func EditDistancePRAM(mach *PRAM, x, y string, c EditCosts) float64 {
	return stredit.DistancePRAM(mach, x, y, c)
}

// EditDistanceHypercube runs the strip combination on simulated networks
// of the given kind, returning the charged-time report.
func EditDistanceHypercube(kind NetworkKind, x, y string, c EditCosts) (float64, stredit.HypercubeReport) {
	return stredit.DistanceHypercube(hc.Kind(kind), x, y, c)
}

// LCSLength returns the longest-common-subsequence length via the edit
// distance identity.
func LCSLength(x, y string) int { return stredit.LCSLength(x, y) }

// --- Monge-powered dynamic programming --------------------------------------

// LWS solves the concave least-weight subsequence problem in O(n lg n):
// f(j) = min_{i<j} f(i) + w(i,j) for a Monge weight w.
func LWS(n int, w func(i, j int) float64) (f []float64, pred []int) {
	return dp.LWS(n, w)
}

// LotSize solves the economic lot-size model (the [AP90] application).
func LotSize(demand, setup, hold []float64) dp.LotSizePlan {
	return dp.LotSize(demand, setup, hold)
}

// OptimalBST returns the optimal binary search tree cost via the
// Knuth-Yao quadrangle-inequality speedup.
func OptimalBST(freq []float64) float64 { return dp.OptimalBST(freq) }

// --- Transportation (the historical root) -----------------------------------

// TransportGreedy runs Hoffman's northwest-corner rule, optimal for Monge
// costs, in O(m+n). An unbalanced problem (supply and demand totals
// differ) returns an error matching ErrUnbalanced.
func TransportGreedy(supply, demand []float64, cost Matrix) (totalCost float64, flows []transport.Flow, err error) {
	return transport.Greedy(supply, demand, cost)
}

// MustTransportGreedy is TransportGreedy for statically balanced inputs;
// it panics with the typed error on an unbalanced problem.
func MustTransportGreedy(supply, demand []float64, cost Matrix) (totalCost float64, flows []transport.Flow) {
	return transport.MustGreedy(supply, demand, cost)
}

// --- Sequential baseline re-exports ------------------------------------------

// RowMinimaDC is the O((m+n) lg m) divide-and-conquer baseline predating
// SMAWK.
func RowMinimaDC(a Matrix) []int { return smawk.RowMinimaDC(a) }

// ANSV solves All Nearest Smaller Values sequentially (the [BBG+89]
// primitive of Lemma 2.2); see pram.ANSV for the O(lg n) parallel version.
func ANSV(vals []float64) (left, right []int) { return pram.ANSVSeq(vals) }
