package monge

import (
	"math/rand"
	"runtime"
	"testing"

	hc "monge/internal/hypercube"
	"monge/internal/marray"
)

// The conformance tests pin the central cross-model contract of the
// repository: every simulated machine — CRCW PRAM, CREW PRAM, hypercube,
// cube-connected cycles, shuffle-exchange — must return exactly the index
// vector the sequential SMAWK reference computes, including leftmost
// tie-breaking, for shared random inputs. The determinism tests pin the
// runtime contract of internal/exec: the worker count of the backing pool
// is an implementation knob that must change neither outputs nor any
// charged counter.

// netInputs converts a dense matrix into the distributed input model of
// the network entry points: v[i] = i, w[j] = j, f reads the matrix.
func netInputs(a Matrix) (v, w []float64, f func(vi, wj float64) float64) {
	v = make([]float64, a.Rows())
	w = make([]float64, a.Cols())
	for i := range v {
		v[i] = float64(i)
	}
	for j := range w {
		w[j] = float64(j)
	}
	return v, w, func(vi, wj float64) float64 { return a.At(int(vi), int(wj)) }
}

var networkKinds = []struct {
	name string
	kind NetworkKind
}{
	{"hypercube", Hypercube},
	{"ccc", CCC},
	{"shuffle-exchange", ShuffleExchange},
}

func TestCrossModelRowMinimaConformance(t *testing.T) {
	shapes := []struct{ m, n int }{
		{1, 1}, {1, 40}, {40, 1}, {5, 13}, {17, 17}, {33, 9}, {64, 64},
	}
	for seed := int64(1); seed <= 4; seed++ {
		rng := rand.New(rand.NewSource(seed))
		for _, sh := range shapes {
			for _, a := range []Matrix{
				marray.RandomMonge(rng, sh.m, sh.n),
				marray.RandomMongeInt(rng, sh.m, sh.n, 3), // tie-rich
			} {
				want := MustRowMinima(a) // sequential SMAWK reference
				check := func(model string, got []int) {
					t.Helper()
					for i := range want {
						if got[i] != want[i] {
							t.Fatalf("seed=%d %dx%d %s: row %d min at col %d, SMAWK says %d",
								seed, sh.m, sh.n, model, i, got[i], want[i])
						}
					}
				}
				check("CRCW", MustRowMinimaPRAM(NewPRAM(CRCW, sh.n), a))
				check("CREW", MustRowMinimaPRAM(NewPRAM(CREW, sh.n), a))
				v, w, f := netInputs(a)
				for _, nk := range networkKinds {
					got, _ := MustRowMinimaHypercube(nk.kind, v, w, f)
					check(nk.name, got)
				}
			}
		}
	}
}

func TestCrossModelStaircaseConformance(t *testing.T) {
	shapes := []struct{ m, n int }{{1, 30}, {9, 21}, {24, 24}, {40, 11}}
	for seed := int64(1); seed <= 4; seed++ {
		rng := rand.New(rand.NewSource(seed))
		for _, sh := range shapes {
			for _, a := range []Matrix{
				marray.RandomStaircaseMonge(rng, sh.m, sh.n),
				marray.RandomStaircaseMongeInt(rng, sh.m, sh.n, 3),
			} {
				want := MustStaircaseRowMinima(a)
				check := func(model string, got []int) {
					t.Helper()
					for i := range want {
						if got[i] != want[i] {
							t.Fatalf("seed=%d %dx%d %s: row %d min at col %d, sequential says %d",
								seed, sh.m, sh.n, model, i, got[i], want[i])
						}
					}
				}
				check("CRCW", MustStaircaseRowMinimaPRAM(NewPRAM(CRCW, sh.n), a))
				check("CREW", MustStaircaseRowMinimaPRAM(NewPRAM(CREW, sh.n), a))
				v, w, f := netInputs(a)
				bound := make([]int, sh.m)
				for i := range bound {
					bound[i] = marray.BoundaryOf(a, i)
				}
				for _, nk := range networkKinds {
					got, _ := MustStaircaseRowMinimaHypercube(nk.kind, v, bound, w, f)
					check(nk.name, got)
				}
			}
		}
	}
}

// workerCounts are the pool sizes the determinism tests sweep: serial,
// whatever the host offers, and an odd count that divides no chunk count
// evenly.
func workerCounts() []int {
	counts := []int{1, runtime.GOMAXPROCS(0), 5}
	seen := map[int]bool{}
	out := counts[:0]
	for _, c := range counts {
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	return out
}

type pramRun struct {
	idx               []int
	time, steps, work int64
}

// TestWorkerCountDeterminismPRAM asserts the exec runtime's contract on
// the PRAM: outputs and every charged counter are identical whether the
// pool has one worker or many. n is chosen large enough that supersteps
// exceed the runtime's serial cutoff and genuinely dispatch in chunks.
func TestWorkerCountDeterminismPRAM(t *testing.T) {
	const n = 512
	rng := rand.New(rand.NewSource(7))
	monge := marray.RandomMongeInt(rng, n, n, 3)
	stair := marray.RandomStaircaseMongeInt(rng, n, n, 3)

	run := func(w int) (rowMin, stairMin pramRun) {
		mach := NewPRAM(CRCW, n)
		mach.SetWorkers(w)
		idx := MustRowMinimaPRAM(mach, monge)
		rowMin = pramRun{idx, mach.Time(), mach.Steps(), mach.Work()}
		mach = NewPRAM(CRCW, n)
		mach.SetWorkers(w)
		idx = MustStaircaseRowMinimaPRAM(mach, stair)
		stairMin = pramRun{idx, mach.Time(), mach.Steps(), mach.Work()}
		return rowMin, stairMin
	}

	counts := workerCounts()
	baseRow, baseStair := run(counts[0])
	for _, w := range counts[1:] {
		gotRow, gotStair := run(w)
		for name, pair := range map[string][2]pramRun{
			"RowMinima":          {baseRow, gotRow},
			"StaircaseRowMinima": {baseStair, gotStair},
		} {
			want, got := pair[0], pair[1]
			if got.time != want.time || got.steps != want.steps || got.work != want.work {
				t.Fatalf("%s workers=%d vs %d: (time,steps,work) = (%d,%d,%d), want (%d,%d,%d)",
					name, w, counts[0], got.time, got.steps, got.work, want.time, want.steps, want.work)
			}
			for i := range want.idx {
				if got.idx[i] != want.idx[i] {
					t.Fatalf("%s workers=%d: output differs from workers=%d at row %d",
						name, w, counts[0], i)
				}
			}
		}
	}
}

// TestWorkerCountDeterminismNetwork runs a direct hypercube program —
// a scan followed by a bitonic sort, both heavy in Exchange supersteps —
// under each worker count and asserts identical cell contents and charged
// Time/Comm/Work.
func TestWorkerCountDeterminismNetwork(t *testing.T) {
	const d = 9 // 512 processors: supersteps clear the runtime's serial cutoff
	run := func(w int) (vals []int, time, comm, work int64) {
		mach := hc.New(hc.Cube, d)
		mach.SetWorkers(w)
		v := hc.NewVec(mach, func(p int) int { return int(uint32(p*2654435761) % 1009) })
		sums := hc.Scan(mach, v, func(a, b int) int { return a + b })
		hc.BitonicSort(mach, sums, func(a, b int) bool { return a < b })
		return sums.Snapshot(), mach.Time(), mach.Comm(), mach.Work()
	}

	counts := workerCounts()
	wantVals, wantTime, wantComm, wantWork := run(counts[0])
	for _, w := range counts[1:] {
		vals, time, comm, work := run(w)
		if time != wantTime || comm != wantComm || work != wantWork {
			t.Fatalf("workers=%d vs %d: (time,comm,work) = (%d,%d,%d), want (%d,%d,%d)",
				w, counts[0], time, comm, work, wantTime, wantComm, wantWork)
		}
		for p := range wantVals {
			if vals[p] != wantVals[p] {
				t.Fatalf("workers=%d: cell %d = %d, workers=%d got %d",
					w, p, vals[p], counts[0], wantVals[p])
			}
		}
	}
}
