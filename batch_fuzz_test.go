package monge

import (
	"math/rand"
	"testing"

	"monge/internal/marray"
)

// FuzzBatchMatchesSingle drives the batched driver with mixed-shape,
// tie-heavy workloads and checks every answer index-for-index against
// the one-query-at-a-time facade path on a fresh machine. Index equality
// (not value equality) is the point: machine reuse must not perturb the
// leftmost tie-breaking rule. The same batch also runs through a
// native-backend driver, making this target a three-way differential:
// batched PRAM, fresh PRAM, and native must all agree on every index.
//
// Run locally with
//
//	go test . -run='^$' -fuzz=FuzzBatchMatchesSingle -fuzztime=30s
func FuzzBatchMatchesSingle(f *testing.F) {
	f.Add(int64(1), 8, 8, 3)
	f.Add(int64(2), 1, 33, 2)
	f.Add(int64(3), 64, 5, 1)
	f.Add(int64(4), 12, 40, 4)
	f.Add(int64(5), 2, 1, 2)
	// Adversarial tie shapes at the block and reduce-stack boundaries.
	f.Add(int64(6), 63, 64, 2)
	f.Add(int64(7), 64, 63, 2)
	// Huge-aspect-ratio shapes: single-row and single-column queries mixed
	// into multi-query batches, where per-query machine sizing degenerates.
	f.Add(int64(8), 64, 1, 2)
	f.Add(int64(9), 1, 64, 2)
	f.Fuzz(func(t *testing.T, seed int64, rawM, rawN, rawK int) {
		clamp := func(x, mod int) int {
			if x < 0 {
				x = -x
			}
			return x%mod + 1
		}
		m, n, k := clamp(rawM, 64), clamp(rawN, 64), clamp(rawK, 4)
		rng := rand.New(rand.NewSource(seed))
		var as []Matrix
		for i := 0; i < k; i++ {
			as = append(as, marray.RandomMonge(rng, m, n))
			as = append(as, marray.RandomMongeInt(rng, m, n, 3))
			// A second shape in the same batch exercises machine switching.
			as = append(as, marray.RandomMongeInt(rng, n, m, 3))
			// Near-degenerate ties: 1e-9 perturbations punish any
			// epsilon-based comparison shortcut with an index mismatch.
			as = append(as, marray.RandomNearTieMonge(rng, m, n))
		}
		d := NewBatchDriver(CRCW)
		defer d.Close()
		nd := NewBatchDriverBackend(CRCW, BackendNative)
		defer nd.Close()
		got, err := d.RowMinimaBatch(as)
		if err != nil {
			t.Fatalf("batch: %v", err)
		}
		ngot, err := nd.RowMinimaBatch(as)
		if err != nil {
			t.Fatalf("native batch: %v", err)
		}
		for i, a := range as {
			want, err := RowMinimaPRAM(NewPRAM(CRCW, a.Cols()), a)
			if err != nil {
				t.Fatalf("single query %d: %v", i, err)
			}
			for r := range want {
				if got[i][r] != want[r] {
					t.Fatalf("seed=%d query %d row %d: batch %d, single %d",
						seed, i, r, got[i][r], want[r])
				}
				if ngot[i][r] != want[r] {
					t.Fatalf("seed=%d query %d row %d: native %d, single %d",
						seed, i, r, ngot[i][r], want[r])
				}
			}
		}
	})
}
