package monge

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"math/rand"
	"os"
	"testing"

	"monge/internal/marray"
	"monge/internal/mindex"
)

// BENCH_index.json (schema monge-index/v1) is the committed
// preprocessing-vs-query-latency baseline of the submatrix-maximum
// index, recorded by
//
//	mongebench -index -index-out BENCH_index.json
//
// For each ladder size it records the one-time build cost, the index
// footprint, the p50/p95 per-query latency over random submatrix
// queries, and the cost of an uncached single SMAWK row-minima call on
// the same matrix — the no-index price per query. TestIndexBaseline
// keeps the file honest (schema, full ladder, internal consistency) and
// enforces the acceptance the recording must demonstrate on any
// machine: at the largest size the indexed p95 beats the uncached SMAWK
// call by at least the committed min_speedup_p95 factor. Absolute
// nanosecond values are machine-dependent and not gated.
type indexBaseline struct {
	Schema        string  `json:"schema"`
	CPUs          int     `json:"cpus"`
	Seed          int64   `json:"seed"`
	Queries       int     `json:"queries_per_point"`
	MinSpeedupP95 float64 `json:"min_speedup_p95"`
	Points        []struct {
		N                int     `json:"n"`
		BuildNS          int64   `json:"build_ns"`
		IndexBytes       int64   `json:"index_bytes"`
		Breakpoints      int     `json:"breakpoints"`
		Queries          int     `json:"queries"`
		QueryP50NS       int64   `json:"query_p50_ns"`
		QueryP95NS       int64   `json:"query_p95_ns"`
		SmawkRowMinimaNS int64   `json:"smawk_row_minima_ns"`
		SpeedupP95       float64 `json:"speedup_p95"`
	} `json:"points"`
}

// TestIndexBaseline validates the committed index-latency baseline: a
// complete, self-consistent ladder whose largest size demonstrates the
// point of the index — per-query cost an order of magnitude below a
// fresh SMAWK pass.
func TestIndexBaseline(t *testing.T) {
	raw, err := os.ReadFile("BENCH_index.json")
	if err != nil {
		t.Fatalf("read baseline: %v", err)
	}
	var b indexBaseline
	if err := json.Unmarshal(raw, &b); err != nil {
		t.Fatalf("parse BENCH_index.json: %v", err)
	}
	if b.Schema != "monge-index/v1" {
		t.Fatalf("BENCH_index.json schema %q, want monge-index/v1", b.Schema)
	}
	if b.CPUs < 1 || b.Queries <= 0 {
		t.Fatalf("baseline provenance incomplete: cpus=%d queries_per_point=%d", b.CPUs, b.Queries)
	}
	if b.MinSpeedupP95 < 12 {
		t.Fatalf("min_speedup_p95 %g weakens the committed acceptance bound of 12", b.MinSpeedupP95)
	}
	wantN := []int{256, 1024, 4096}
	if len(b.Points) != len(wantN) {
		t.Fatalf("%d ladder sizes, want %d (256, 1024, 4096)", len(b.Points), len(wantN))
	}
	for i, p := range b.Points {
		if p.N != wantN[i] {
			t.Fatalf("point %d has n=%d, want %d", i, p.N, wantN[i])
		}
		if p.BuildNS <= 0 || p.IndexBytes <= 0 || p.Breakpoints <= 0 {
			t.Errorf("n=%d: build_ns=%d index_bytes=%d breakpoints=%d must all be positive",
				p.N, p.BuildNS, p.IndexBytes, p.Breakpoints)
		}
		if p.Queries != b.Queries {
			t.Errorf("n=%d recorded %d queries, ladder says %d per point", p.N, p.Queries, b.Queries)
		}
		if !(p.QueryP50NS > 0 && p.QueryP50NS <= p.QueryP95NS) {
			t.Errorf("n=%d query percentiles not positive and monotone: p50=%d p95=%d",
				p.N, p.QueryP50NS, p.QueryP95NS)
		}
		if p.SmawkRowMinimaNS <= 0 {
			t.Errorf("n=%d smawk_row_minima_ns=%d, want > 0", p.N, p.SmawkRowMinimaNS)
		}
		wantSpeedup := float64(p.SmawkRowMinimaNS) / float64(p.QueryP95NS)
		if diff := p.SpeedupP95 - wantSpeedup; diff > 1e-6 || diff < -1e-6 {
			t.Errorf("n=%d speedup_p95 %g inconsistent with smawk/p95 = %g", p.N, p.SpeedupP95, wantSpeedup)
		}
	}
	// The acceptance: at the largest size the index must be at least
	// min_speedup_p95 times faster per query than an uncached SMAWK call.
	if top := b.Points[len(b.Points)-1]; top.SpeedupP95 < b.MinSpeedupP95 {
		t.Errorf("n=%d speedup_p95 %.1fx below the committed bound %.0fx — re-record BENCH_index.json",
			top.N, top.SpeedupP95, b.MinSpeedupP95)
	}
}

// TestBuildIndexFacade covers the public index API end to end: build
// over Monge and staircase inputs, direct queries against the brute
// oracle, and the typed error contract.
func TestBuildIndexFacade(t *testing.T) {
	rng := rand.New(rand.NewSource(31))

	for _, tc := range []struct {
		name string
		a    Matrix
	}{
		{"dense-monge", marray.RandomMongeInt(rng, 40, 56, 4)},
		{"func-monge", NewFunc(56, 40, marray.RandomMonge(rng, 56, 40).At)},
		{"staircase", marray.RandomStaircaseMonge(rng, 32, 32)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ix, err := BuildIndex(tc.a)
			if err != nil {
				t.Fatalf("BuildIndex: %v", err)
			}
			m, n := tc.a.Rows(), tc.a.Cols()
			for k := 0; k < 25; k++ {
				r1, c1 := rng.Intn(m), rng.Intn(n)
				r2, c2 := r1+rng.Intn(m-r1), c1+rng.Intn(n-c1)
				pos, err := IndexSubmatrixMax(ix, r1, r2, c1, c2)
				if err != nil {
					t.Fatalf("IndexSubmatrixMax: %v", err)
				}
				if want := mindex.SubmatrixMaxBrute(tc.a, r1, r2, c1, c2); pos != want {
					t.Fatalf("[%d:%d,%d:%d]: got %+v, want %+v", r1, r2, c1, c2, pos, want)
				}
			}
			idx, err := IndexRangeRowMinima(ix, 0, m-1)
			if err != nil {
				t.Fatalf("IndexRangeRowMinima: %v", err)
			}
			for r := 0; r < m; r++ {
				best, bj := math.Inf(1), -1
				for j := 0; j < n; j++ {
					if v := tc.a.At(r, j); v < best {
						best, bj = v, j
					}
				}
				if idx[r] != bj {
					t.Fatalf("row %d: got %d, want %d", r, idx[r], bj)
				}
			}
		})
	}

	// The sampled screen rejects a non-Monge input before building.
	notMonge := FromRows([][]float64{{5, 0}, {0, 5}})
	if _, err := BuildIndex(notMonge); !errors.Is(err, ErrNotMonge) {
		t.Fatalf("BuildIndex(non-Monge): err=%v, want ErrNotMonge", err)
	}
	// Nil index and bad ranges are typed, not panics.
	if _, err := IndexSubmatrixMax(nil, 0, 0, 0, 0); !errors.Is(err, ErrDimensionMismatch) {
		t.Fatalf("nil index: err=%v, want ErrDimensionMismatch", err)
	}
	ix, err := BuildIndex(marray.RandomMonge(rng, 8, 8))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := IndexSubmatrixMax(ix, 3, 1, 0, 7); !errors.Is(err, ErrDimensionMismatch) {
		t.Fatalf("bad rect: err=%v, want ErrDimensionMismatch", err)
	}
	if _, err := IndexRangeRowMinima(ix, 0, 8); !errors.Is(err, ErrDimensionMismatch) {
		t.Fatalf("row overflow: err=%v, want ErrDimensionMismatch", err)
	}
}

// TestDriverPoolIndexQueries covers the pool surface of the index
// kinds: tickets, per-query contexts, the Do lifecycle with its request
// builders, and the calling-goroutine range screens.
func TestDriverPoolIndexQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	a := marray.RandomMongeInt(rng, 48, 48, 5)
	ix, err := BuildIndex(a)
	if err != nil {
		t.Fatal(err)
	}
	dp := NewDriverPool(CRCW, 2)
	defer dp.Close()

	tk, err := dp.SubmatrixMax(ix, 4, 40, 3, 30)
	if err != nil {
		t.Fatal(err)
	}
	if res := tk.Result(); res.Err != nil || res.Pos != mindex.SubmatrixMaxBrute(a, 4, 40, 3, 30) {
		t.Fatalf("pool submax: %+v", res)
	}
	tk, err = dp.RangeRowMinima(ix, 10, 20)
	if err != nil {
		t.Fatal(err)
	}
	res := tk.Result()
	if res.Err != nil || len(res.Idx) != 11 {
		t.Fatalf("pool range-row-minima: %+v", res)
	}
	if res2 := dp.Do(context.Background(), SubmatrixMaxRequest(ix, 0, 47, 0, 47)); res2.Err != nil ||
		res2.Pos != mindex.SubmatrixMaxBrute(a, 0, 47, 0, 47) {
		t.Fatalf("Do submax: %+v", res2)
	}
	if res2 := dp.Do(context.Background(), RangeRowMinimaRequest(ix, 0, 47)); res2.Err != nil || len(res2.Idx) != 48 {
		t.Fatalf("Do range-row-minima: %+v", res2)
	}

	// Screens run before submission: bad ranges and nil indexes never
	// reach the queue.
	if _, err := dp.SubmatrixMax(ix, 0, 48, 0, 47); !errors.Is(err, ErrDimensionMismatch) {
		t.Fatalf("row overflow: err=%v, want ErrDimensionMismatch", err)
	}
	if _, err := dp.RangeRowMinima(nil, 0, 1); !errors.Is(err, ErrDimensionMismatch) {
		t.Fatalf("nil index: err=%v, want ErrDimensionMismatch", err)
	}
	if res := dp.Do(context.Background(), SubmatrixMaxRequest(ix, -1, 0, 0, 0)); !errors.Is(res.Err, ErrDimensionMismatch) {
		t.Fatalf("Do bad rect: err=%v, want ErrDimensionMismatch", res.Err)
	}

	// A canceled per-query context resolves the ticket with ErrCanceled.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	tk, err = dp.SubmatrixMaxCtx(ctx, ix, 0, 47, 0, 47)
	if err == nil {
		if res := tk.Result(); !errors.Is(res.Err, ErrCanceled) {
			t.Fatalf("canceled ctx: err=%v, want ErrCanceled", res.Err)
		}
	} else if !errors.Is(err, ErrCanceled) {
		t.Fatalf("canceled submit: err=%v, want ErrCanceled", err)
	}
}
