package monge

import (
	"encoding/json"
	"os"
	"strings"
	"testing"
)

// BENCH_kernels.json (schema monge-kernels/v1) is the committed
// scan-kernel latency baseline: the branchless argmin/argmax kernels of
// internal/smawk against their scalar references (BenchmarkScanKernels)
// and the end-to-end BatchDriver scan shapes the kernels serve
// (BenchmarkBackendKernelScans). The kernel-perf-smoke CI job re-runs
// both benchmarks and enforces each entry's ci_ns_per_op ceiling with
// 20% tolerance, plus the headline ratio — argmin-twopass over
// argmin-branchless at n=4096 — from its own fresh run.
// TestKernelBaseline keeps the committed file honest: complete entries,
// ceilings that do not undercut the recorded numbers, and a recorded
// headline ratio that actually demonstrates the committed acceptance.
type kernelBaseline struct {
	Schema           string  `json:"schema"`
	CPUs             int     `json:"cpus"`
	MinArgminSpeedup float64 `json:"min_argmin_speedup_n4096"`
	Benchmarks       []struct {
		Name    string  `json:"name"`
		NSPerOp float64 `json:"ns_per_op"`
		CINSOp  float64 `json:"ci_ns_per_op"`
	} `json:"benchmarks"`
}

func TestKernelBaseline(t *testing.T) {
	raw, err := os.ReadFile("BENCH_kernels.json")
	if err != nil {
		t.Fatalf("read baseline: %v", err)
	}
	var b kernelBaseline
	if err := json.Unmarshal(raw, &b); err != nil {
		t.Fatalf("parse BENCH_kernels.json: %v", err)
	}
	if b.Schema != "monge-kernels/v1" {
		t.Fatalf("BENCH_kernels.json schema %q, want monge-kernels/v1", b.Schema)
	}
	if b.CPUs < 1 {
		t.Fatalf("cpus=%d; the baseline must name its recording machine", b.CPUs)
	}
	if b.MinArgminSpeedup < 1.5 {
		t.Fatalf("min_argmin_speedup_n4096=%g; the acceptance floor is 1.5 or stricter",
			b.MinArgminSpeedup)
	}
	byName := map[string]float64{}
	for _, row := range b.Benchmarks {
		if row.NSPerOp <= 0 || row.CINSOp <= 0 {
			t.Errorf("%s: ns_per_op=%g ci_ns_per_op=%g, want positive", row.Name, row.NSPerOp, row.CINSOp)
		}
		if row.CINSOp < row.NSPerOp {
			t.Errorf("%s: ci ceiling %g below the recorded %g — the smoke job would flag the recording run itself",
				row.Name, row.CINSOp, row.NSPerOp)
		}
		if !strings.HasPrefix(row.Name, "BenchmarkScanKernels/") &&
			!strings.HasPrefix(row.Name, "BenchmarkBackendKernelScans/") {
			t.Errorf("%s: unrecognized benchmark name", row.Name)
		}
		byName[row.Name] = row.NSPerOp
	}
	// Every gated shape must be present: renaming a sub-benchmark must
	// not silently drop it from the smoke job.
	for _, kernel := range []string{
		"argmin-twopass", "argmin-branchless",
		"argmax-branchy-skipinf", "argmax-branchless-skipinf",
		"argmax-branchy-hostile", "argmax-branchless-hostile",
	} {
		for _, n := range []string{"32", "256", "4096"} {
			name := "BenchmarkScanKernels/" + kernel + "/n=" + n
			if _, ok := byName[name]; !ok {
				t.Errorf("baseline has no %s entry; the benchmark ladder runs it", name)
			}
		}
	}
	for _, be := range []string{"pram", "native"} {
		for _, shape := range []string{"narrow/4096x32", "huge-aspect/1x65536", "huge-aspect/65536x1"} {
			name := "BenchmarkBackendKernelScans/backend=" + be + "/" + shape
			if _, ok := byName[name]; !ok {
				t.Errorf("baseline has no %s entry; the benchmark ladder runs it", name)
			}
		}
	}
	// The acceptance the recording must demonstrate: the branchless
	// argmin beats the two-pass scalar reference at the largest size.
	ref := byName["BenchmarkScanKernels/argmin-twopass/n=4096"]
	krn := byName["BenchmarkScanKernels/argmin-branchless/n=4096"]
	if ref > 0 && krn > 0 {
		if ratio := ref / krn; ratio < b.MinArgminSpeedup {
			t.Errorf("recorded argmin speedup at n=4096 = %.2f, want >= %.1f — re-record BENCH_kernels.json",
				ratio, b.MinArgminSpeedup)
		}
	}
}
