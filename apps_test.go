package monge

import (
	"math"
	"math/rand"
	"testing"

	"monge/internal/geom"
	"monge/internal/marray"
)

func TestAppsFacadeNeighbors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p, q, ob := geom.ObstructedChains(rng, 12, 14)
	obs := []Polygon{ob}
	mach := NewPRAM(CRCW, 26)
	res := Neighbors(NearestInvisible, mach, p, q, obs)
	if len(res.Index) != 12 {
		t.Fatal("result length wrong")
	}
	far := AllFarthestNeighbors(p, q)
	if len(far) != 12 {
		t.Fatal("farthest length wrong")
	}
	pfar := AllFarthestNeighborsPRAM(NewPRAM(CRCW, 26), p, q)
	for i := range far {
		if far[i] != pfar[i] {
			t.Fatal("PRAM farthest disagrees")
		}
	}
}

func TestAppsFacadeRects(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts := make([]Point, 30)
	for i := range pts {
		pts[i] = Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
	}
	a1, i, j := MaxCornerRect(pts)
	a2, _, _ := MaxCornerRectPRAM(NewPRAM(CRCW, 30), pts)
	if a1 != a2 || i == j {
		t.Fatalf("corner rect mismatch: %v vs %v", a1, a2)
	}
	bounds := Rect{X0: 0, Y0: 0, X1: 100, Y1: 100}
	full := LargestEmptyRect(pts, bounds)
	anch := LargestAnchoredRect(NewPRAM(CRCW, 30), pts, bounds)
	if anch.Area() > full.Area()+1e-9 {
		t.Fatal("anchored cannot beat the global optimum")
	}
}

func TestAppsFacadeStringEditing(t *testing.T) {
	c := UnitEditCosts()
	if EditDistance("kitten", "sitting", c) != 3 {
		t.Fatal("unit distance wrong")
	}
	mach := NewPRAM(CRCW, 64)
	if EditDistancePRAM(mach, "kitten", "sitting", c) != 3 {
		t.Fatal("PRAM distance wrong")
	}
	d, rep := EditDistanceHypercube(Hypercube, "flaw", "lawn", c)
	if d != 2 || rep.Time == 0 {
		t.Fatalf("hypercube distance %v (time %d)", d, rep.Time)
	}
	if LCSLength("ABCBDAB", "BDCABA") != 4 {
		t.Fatal("LCS wrong")
	}
}

func TestAppsFacadeDP(t *testing.T) {
	f, pred := LWS(5, func(i, j int) float64 { return float64((j - i) * (j - i)) })
	if len(f) != 6 || len(pred) != 6 {
		t.Fatal("LWS shapes wrong")
	}
	plan := LotSize([]float64{10, 20, 5}, []float64{50, 50, 50}, []float64{1, 1, 1})
	if plan.Cost <= 0 || len(plan.Orders) == 0 {
		t.Fatal("lot size result wrong")
	}
	if OptimalBST([]float64{3, 1, 4}) <= 0 {
		t.Fatal("OBST wrong")
	}
}

func TestAppsFacadeTransportAndBaselines(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cost := marray.RandomMonge(rng, 3, 4)
	shift := math.Inf(1)
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			shift = math.Min(shift, cost.At(i, j))
		}
	}
	c := NewFunc(3, 4, func(i, j int) float64 { return cost.At(i, j) - shift })
	total, flows := MustTransportGreedy([]float64{5, 5, 5}, []float64{4, 4, 4, 3}, c)
	if total < 0 || len(flows) == 0 {
		t.Fatal("transport result wrong")
	}
	a := marray.RandomMonge(rng, 15, 15)
	dc := RowMinimaDC(a)
	sm := MustRowMinima(a)
	for i := range sm {
		if dc[i] != sm[i] {
			t.Fatal("DC baseline disagrees with SMAWK")
		}
	}
	left, right := ANSV([]float64{3, 1, 4, 1, 5})
	if left[2] != 1 || right[0] != 1 {
		t.Fatalf("ANSV wrong: %v %v", left, right)
	}
}
