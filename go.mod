module monge

go 1.22
