module monge

go 1.24
