package monge

import (
	"encoding/json"
	"os"
	"testing"
)

// BENCH_throughput.json (schema monge-throughput/v1) is the committed
// serving-throughput baseline for BenchmarkDriverPoolThroughput: the
// recorded queries/s per worker count, the core count of the recording
// machine, and the scaling floor the CI throughput-smoke job enforces
// from a fresh multi-core run. This test keeps the file honest — schema,
// benchmark coverage, and internal consistency — and enforces the
// scaling floor locally whenever the host actually has the cores to
// measure it.
type throughputBaseline struct {
	Schema       string  `json:"schema"`
	CPUs         int     `json:"cpus"`
	QueriesPerOp int     `json:"queries_per_op"`
	MinScaling   float64 `json:"min_scaling_w4_over_w1"`
	Benchmarks   []struct {
		Name    string  `json:"name"`
		Workers int     `json:"workers"`
		QPS     float64 `json:"qps"`
		CIQPS   float64 `json:"ci_qps"`
	} `json:"benchmarks"`
}

func loadThroughputBaseline(t *testing.T) throughputBaseline {
	t.Helper()
	raw, err := os.ReadFile("BENCH_throughput.json")
	if err != nil {
		t.Fatalf("read baseline: %v", err)
	}
	var b throughputBaseline
	if err := json.Unmarshal(raw, &b); err != nil {
		t.Fatalf("parse BENCH_throughput.json: %v", err)
	}
	if b.Schema != "monge-throughput/v1" {
		t.Fatalf("BENCH_throughput.json schema %q, want monge-throughput/v1", b.Schema)
	}
	return b
}

// TestThroughputBaseline validates the committed throughput baseline:
// the worker ladder the benchmark runs is present with positive recorded
// and CI-floor numbers, and the recorded numbers are self-consistent
// with the recording machine. When the baseline was recorded on a
// multi-core machine, the committed w4/w1 ratio itself must meet the
// scaling floor; single-core recordings delegate that acceptance to the
// CI job's fresh run (a flat ladder is the only honest single-core
// measurement).
func TestThroughputBaseline(t *testing.T) {
	b := loadThroughputBaseline(t)
	if b.CPUs < 1 {
		t.Fatalf("cpus=%d; the baseline must name its recording machine", b.CPUs)
	}
	if b.QueriesPerOp < 1 {
		t.Fatalf("queries_per_op=%d, want >= 1", b.QueriesPerOp)
	}
	if b.MinScaling < 2.0 {
		t.Fatalf("min_scaling_w4_over_w1=%g; the acceptance floor is 2.0 or stricter", b.MinScaling)
	}
	byWorkers := map[int]float64{}
	for _, row := range b.Benchmarks {
		if row.QPS <= 0 || row.CIQPS <= 0 {
			t.Errorf("%s: qps=%g ci_qps=%g, want positive", row.Name, row.QPS, row.CIQPS)
		}
		byWorkers[row.Workers] = row.QPS
	}
	for _, w := range []int{1, 2, 4} {
		if _, ok := byWorkers[w]; !ok {
			t.Errorf("baseline has no workers=%d entry; the benchmark ladder runs it", w)
		}
	}
	if b.CPUs >= 4 {
		if ratio := byWorkers[4] / byWorkers[1]; ratio < b.MinScaling {
			t.Errorf("recorded scaling w4/w1 = %.2f on a %d-core machine, want >= %.1f",
				ratio, b.CPUs, b.MinScaling)
		}
	} else {
		t.Logf("baseline recorded on %d core(s); scaling acceptance runs fresh in the CI throughput-smoke job", b.CPUs)
	}
}
