package monge

import (
	"encoding/json"
	"os"
	"strings"
	"testing"
)

// BENCH_throughput.json (schema monge-throughput/v1) is the committed
// serving-throughput baseline for BenchmarkDriverPoolThroughput (PRAM
// backend) and BenchmarkDriverPoolThroughputNative (native goroutine
// backend): the recorded queries/s per worker count on each backend, the
// core count of the recording machine, and the floors the CI
// throughput-smoke job enforces from a fresh run. This test keeps the
// file honest — schema, benchmark coverage per backend, and internal
// consistency — and enforces the acceptance floors locally whenever the
// committed numbers can express them: the native/PRAM w1 ratio always
// (it is core-count independent), the w4/w1 scaling ratio only when the
// recording machine had the cores to measure it.
type throughputBaseline struct {
	Schema         string  `json:"schema"`
	CPUs           int     `json:"cpus"`
	QueriesPerOp   int     `json:"queries_per_op"`
	MinScaling     float64 `json:"min_scaling_w4_over_w1"`
	MinNativeRatio float64 `json:"min_native_over_pram_w1"`
	Benchmarks     []struct {
		Name    string  `json:"name"`
		Workers int     `json:"workers"`
		QPS     float64 `json:"qps"`
		CIQPS   float64 `json:"ci_qps"`
	} `json:"benchmarks"`
}

func loadThroughputBaseline(t *testing.T) throughputBaseline {
	t.Helper()
	raw, err := os.ReadFile("BENCH_throughput.json")
	if err != nil {
		t.Fatalf("read baseline: %v", err)
	}
	var b throughputBaseline
	if err := json.Unmarshal(raw, &b); err != nil {
		t.Fatalf("parse BENCH_throughput.json: %v", err)
	}
	if b.Schema != "monge-throughput/v1" {
		t.Fatalf("BENCH_throughput.json schema %q, want monge-throughput/v1", b.Schema)
	}
	return b
}

// TestThroughputBaseline validates the committed throughput baseline:
// both backend ladders are present with positive recorded and CI-floor
// numbers, and the recorded numbers are self-consistent with the
// recording machine. The backend acceptance — native w1 at least
// min_native_over_pram_w1 times the PRAM w1 — is checked directly on
// the committed numbers: both ladders are recorded in the same run, and
// the ratio prices removed simulation overhead rather than parallel
// speedup, so a single-core recording measures it faithfully. The
// scaling acceptance (w4/w1 on the PRAM ladder) still needs real cores;
// single-core recordings delegate it to the CI job's fresh run.
func TestThroughputBaseline(t *testing.T) {
	b := loadThroughputBaseline(t)
	if b.CPUs < 1 {
		t.Fatalf("cpus=%d; the baseline must name its recording machine", b.CPUs)
	}
	if b.QueriesPerOp < 1 {
		t.Fatalf("queries_per_op=%d, want >= 1", b.QueriesPerOp)
	}
	if b.MinScaling < 2.0 {
		t.Fatalf("min_scaling_w4_over_w1=%g; the acceptance floor is 2.0 or stricter", b.MinScaling)
	}
	if b.MinNativeRatio < 6.0 {
		t.Fatalf("min_native_over_pram_w1=%g; the acceptance floor is 6.0 or stricter", b.MinNativeRatio)
	}
	// Split the ladders by benchmark name: mixing backends into one
	// workers->qps map would corrupt both ratio checks.
	pram := map[int]float64{}
	native := map[int]float64{}
	for _, row := range b.Benchmarks {
		if row.QPS <= 0 || row.CIQPS <= 0 {
			t.Errorf("%s: qps=%g ci_qps=%g, want positive", row.Name, row.QPS, row.CIQPS)
		}
		switch {
		case strings.HasPrefix(row.Name, "BenchmarkDriverPoolThroughputNative/"):
			native[row.Workers] = row.QPS
		case strings.HasPrefix(row.Name, "BenchmarkDriverPoolThroughput/"):
			pram[row.Workers] = row.QPS
		default:
			t.Errorf("%s: unrecognized benchmark name", row.Name)
		}
	}
	for _, w := range []int{1, 2, 4} {
		if _, ok := pram[w]; !ok {
			t.Errorf("baseline has no PRAM workers=%d entry; the benchmark ladder runs it", w)
		}
		if _, ok := native[w]; !ok {
			t.Errorf("baseline has no native workers=%d entry; the benchmark ladder runs it", w)
		}
	}
	if pram[1] > 0 && native[1] > 0 {
		if ratio := native[1] / pram[1]; ratio < b.MinNativeRatio {
			t.Errorf("recorded native/pram w1 ratio = %.2f, want >= %.1f",
				ratio, b.MinNativeRatio)
		}
	}
	if b.CPUs >= 4 {
		if ratio := pram[4] / pram[1]; ratio < b.MinScaling {
			t.Errorf("recorded scaling w4/w1 = %.2f on a %d-core machine, want >= %.1f",
				ratio, b.CPUs, b.MinScaling)
		}
	} else {
		t.Logf("baseline recorded on %d core(s); scaling acceptance runs fresh in the CI throughput-smoke job", b.CPUs)
	}
}
