package monge

import (
	"math/rand"
	"testing"

	"monge/internal/marray"
)

func TestFacadeSequential(t *testing.T) {
	a := FromRows([][]float64{
		{4, 2, 7},
		{5, 1, 6},
		{6, 0, 5},
	})
	if !IsMonge(a) {
		t.Fatal("test array should be Monge")
	}
	if got := MustRowMinima(a); got[0] != 1 || got[1] != 1 || got[2] != 1 {
		t.Fatalf("RowMinima = %v", got)
	}
	if got := MustMongeRowMaxima(a); got[0] != 2 || got[2] != 0 {
		t.Fatalf("MongeRowMaxima = %v", got)
	}
	inv := Negate(a)
	if !IsInverseMonge(inv) {
		t.Fatal("negation should be inverse-Monge")
	}
	if got := MustRowMaxima(inv); got[1] != 1 {
		t.Fatalf("RowMaxima = %v", got)
	}
}

func TestFacadeStaircase(t *testing.T) {
	s := NewStair(3, 3,
		func(i, j int) float64 { return float64((i-j)*(i-j) + j) },
		func(i int) int { return 3 - i },
	)
	if !IsStaircaseMonge(s) {
		t.Fatal("stair should be staircase-Monge")
	}
	idx := MustStaircaseRowMinima(s)
	if len(idx) != 3 {
		t.Fatal("length wrong")
	}
	mach := NewPRAM(CRCW, 8)
	pidx := MustStaircaseRowMinimaPRAM(mach, s)
	for i := range idx {
		if idx[i] != pidx[i] {
			t.Fatalf("PRAM staircase disagrees at %d", i)
		}
	}
}

func TestFacadePRAMAndViews(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := marray.RandomMonge(rng, 20, 20)
	mach := NewPRAM(CREW, 40)
	got := MustRowMinimaPRAM(mach, a)
	want := MustRowMinima(a)
	for i := range want {
		if got[i] != want[i] {
			t.Fatal("PRAM row minima disagree")
		}
	}
	if mach.Time() == 0 || mach.Work() == 0 {
		t.Fatal("counters must be charged")
	}
	tr := Transpose(a)
	if tr.Rows() != a.Cols() {
		t.Fatal("transpose dims")
	}
	if ReverseCols(ReverseRows(a)).At(0, 0) != a.At(19, 19) {
		t.Fatal("reversal views wrong")
	}
}

func TestFacadeTube(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	c := MustNewComposite(marray.RandomMonge(rng, 5, 6), marray.RandomMonge(rng, 6, 7))
	argJ, vals := MustTubeMaxima(c)
	mach := NewPRAM(CREW, 5*13)
	pArgJ, pVals := MustTubeMaximaPRAM(mach, c)
	for i := range argJ {
		for k := range argJ[i] {
			if argJ[i][k] != pArgJ[i][k] || vals[i][k] != pVals[i][k] {
				t.Fatal("tube results disagree")
			}
		}
	}
	// inverse-Monge factors for minima
	ci := MustNewComposite(marray.RandomInverseMonge(rng, 4, 5), marray.RandomInverseMonge(rng, 5, 6))
	mArgJ, _ := MustTubeMinima(ci)
	mach2 := NewPRAM(CRCW, 4*11)
	pmArgJ, _ := MustTubeMinimaPRAM(mach2, ci)
	for i := range mArgJ {
		for k := range mArgJ[i] {
			if mArgJ[i][k] != pmArgJ[i][k] {
				t.Fatal("tube minima disagree")
			}
		}
	}
}

func TestFacadeHypercube(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 16
	a := marray.RandomMonge(rng, n, n)
	v := make([]float64, n)
	w := make([]float64, n)
	for i := range v {
		v[i] = float64(i)
		w[i] = float64(i)
	}
	f := func(vi, wj float64) float64 { return a.At(int(vi), int(wj)) }
	want := MustRowMinima(a)
	for _, kind := range []NetworkKind{Hypercube, CCC, ShuffleExchange} {
		got, mach := MustRowMinimaHypercube(kind, v, w, f)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("kind %v disagrees", kind)
			}
		}
		if mach.Time() == 0 {
			t.Fatal("network time must be charged")
		}
	}
	gotMax, _ := MustMongeRowMaximaHypercube(Hypercube, v, w, f)
	wantMax := MustMongeRowMaxima(a)
	for i := range wantMax {
		if gotMax[i] != wantMax[i] {
			t.Fatal("hypercube maxima disagree")
		}
	}
	// staircase
	bounds := marray.RandomStaircaseBoundary(rng, n, n)
	st := NewStair(n, n, func(i, j int) float64 { return a.At(i, j) }, func(i int) int { return bounds[i] })
	wantSt := MustStaircaseRowMinima(st)
	gotSt, _ := MustStaircaseRowMinimaHypercube(Hypercube, v, bounds, w, f)
	for i := range wantSt {
		if gotSt[i] != wantSt[i] {
			t.Fatal("hypercube staircase disagrees")
		}
	}
	// tube
	c := MustNewComposite(marray.RandomMonge(rng, 6, 6), marray.RandomMonge(rng, 6, 6))
	wantJ, _ := MustTubeMaxima(c)
	gotJ, _, _ := MustTubeMaximaHypercube(Hypercube, c)
	for i := range wantJ {
		for k := range wantJ[i] {
			if gotJ[i][k] != wantJ[i][k] {
				t.Fatal("hypercube tube disagrees")
			}
		}
	}
}
