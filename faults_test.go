package monge

// Fault-path conformance: under any deterministic fault schedule — chunk
// stalls, link drops/garbles, superstep timeouts — every machine model
// must return index-exact results; only the charged counters may move.
// These tests pin that contract at the public API for the fault matrix
// rates the CI job uses, and pin the cancellation contract (a cancelled
// context stops a run at the next superstep boundary with a typed error).

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"monge/internal/faults"
	"monge/internal/marray"
	"monge/internal/merr"
	"monge/internal/pram"
)

// faultRates is the fault matrix of the ISSUE: injection off, sparse, and
// heavy (the heaviest rate any acceptance criterion uses).
var faultRates = []float64{0, 0.01, 0.2}

const faultSeed = 42

// faultedStats sums the delivered-fault counters.
func faultedStats(in *faults.Injector) int64 {
	s := in.Stats()
	return s.Stalls + s.Drops + s.Garbles + s.Timeouts
}

func TestFaultConformanceRowMinima(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 24
	a := marray.RandomMonge(rng, n, n)
	v := make([]float64, n)
	w := make([]float64, n)
	for i := range v {
		v[i], w[i] = float64(i), float64(i)
	}
	f := func(vi, wj float64) float64 { return a.At(int(vi), int(wj)) }
	want := MustRowMinima(a)

	for _, rate := range faultRates {
		for _, mode := range []Mode{CRCW, CREW} {
			inj := faults.New(faultSeed, rate)
			mach := NewPRAM(mode, n)
			mach.SetFaults(inj)
			got, err := RowMinimaPRAM(mach, a)
			if err != nil {
				t.Fatalf("PRAM %v rate %g: %v", mode, rate, err)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("PRAM %v rate %g: row %d index %d, want %d", mode, rate, i, got[i], want[i])
				}
			}
		}
		for _, kind := range []NetworkKind{Hypercube, CCC, ShuffleExchange} {
			inj := faults.New(faultSeed, rate)
			mach := NewNetworkFor(kind, n, n)
			mach.SetFaults(inj)
			got, err := RowMinimaHypercube(mach, v, w, f)
			if err != nil {
				t.Fatalf("network %v rate %g: %v", kind, rate, err)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("network %v rate %g: row %d index %d, want %d", kind, rate, i, got[i], want[i])
				}
			}
			if rate >= 0.2 && faultedStats(inj) == 0 {
				t.Fatalf("network %v rate %g: injector delivered no faults (schedule broken?)", kind, rate)
			}
		}
	}
}

func TestFaultConformanceTubeMaxima(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	c := MustNewComposite(marray.RandomMonge(rng, 6, 6), marray.RandomMonge(rng, 6, 6))
	wantJ, wantV := MustTubeMaxima(c)

	same := func(t *testing.T, label string, gotJ [][]int, gotV [][]float64) {
		t.Helper()
		for i := range wantJ {
			for k := range wantJ[i] {
				if gotJ[i][k] != wantJ[i][k] {
					t.Fatalf("%s: tube (%d,%d) index %d, want %d", label, i, k, gotJ[i][k], wantJ[i][k])
				}
				if gotV[i][k] != wantV[i][k] {
					t.Fatalf("%s: tube (%d,%d) value %g, want %g", label, i, k, gotV[i][k], wantV[i][k])
				}
			}
		}
	}

	for _, rate := range faultRates {
		for _, mode := range []Mode{CRCW, CREW} {
			mach := NewPRAM(mode, 64)
			mach.SetFaults(faults.New(faultSeed, rate))
			gotJ, gotV, err := TubeMaximaPRAM(mach, c)
			if err != nil {
				t.Fatalf("PRAM %v rate %g: %v", mode, rate, err)
			}
			same(t, "pram", gotJ, gotV)
		}
		for _, kind := range []NetworkKind{Hypercube, CCC, ShuffleExchange} {
			mach := NewTubeNetworkFor(kind, c)
			mach.SetFaults(faults.New(faultSeed, rate))
			gotJ, gotV, err := TubeMaximaHypercube(mach, c)
			if err != nil {
				t.Fatalf("network %v rate %g: %v", kind, rate, err)
			}
			same(t, "network", gotJ, gotV)
		}
	}
}

// TestFaultChargesInflateCounters pins the charging model: a faulty run
// must cost strictly more charged time than the fault-free run of the
// same workload, and the same seed must charge the same amount twice
// (the determinism contract).
func TestFaultChargesInflateCounters(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 24
	a := marray.RandomMonge(rng, n, n)
	v := make([]float64, n)
	w := make([]float64, n)
	for i := range v {
		v[i], w[i] = float64(i), float64(i)
	}
	f := func(vi, wj float64) float64 { return a.At(int(vi), int(wj)) }

	run := func(rate float64) int64 {
		mach := NewNetworkFor(Hypercube, n, n)
		mach.SetFaults(faults.New(faultSeed, rate))
		if _, err := RowMinimaHypercube(mach, v, w, f); err != nil {
			t.Fatal(err)
		}
		return mach.Time()
	}
	clean, faulty, again := run(0), run(0.2), run(0.2)
	if faulty <= clean {
		t.Fatalf("faulty time %d must exceed clean time %d", faulty, clean)
	}
	if faulty != again {
		t.Fatalf("same seed charged %d then %d (schedule not deterministic)", faulty, again)
	}
}

func TestCancelledContextTypedError(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	n := 16
	a := marray.RandomMonge(rng, n, n)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	mach := NewPRAM(CRCW, n)
	mach.SetContext(ctx)
	if _, err := RowMinimaPRAM(mach, a); !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("PRAM error %v must match ErrCanceled and context.Canceled", err)
	}

	v := make([]float64, n)
	w := make([]float64, n)
	for i := range v {
		v[i], w[i] = float64(i), float64(i)
	}
	f := func(vi, wj float64) float64 { return a.At(int(vi), int(wj)) }
	net := NewNetworkFor(Hypercube, n, n)
	net.SetContext(ctx)
	if _, err := RowMinimaHypercube(net, v, w, f); !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("network error %v must match ErrCanceled and context.Canceled", err)
	}
}

// TestCancellationStopsWithinOneSuperstep cancels mid-run and checks the
// machine abandons the loop at the next superstep boundary: the step whose
// body tripped the cancel may finish dispatching, and the following Step
// call must throw without executing anything.
func TestCancellationStopsWithinOneSuperstep(t *testing.T) {
	m := pram.New(pram.CRCW, 4096)
	ctx, cancel := context.WithCancel(context.Background())
	m.SetContext(ctx)

	const cancelAt = 3
	stepsCompleted := 0
	var err error
	func() {
		defer merr.Catch(&err)
		for s := 0; s < 100; s++ {
			m.Step(4096, func(id int) {
				if s == cancelAt && id == 0 {
					cancel()
				}
			})
			stepsCompleted++
		}
	}()
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v must match ErrCanceled and context.Canceled", err)
	}
	if stepsCompleted < cancelAt || stepsCompleted > cancelAt+1 {
		t.Fatalf("completed %d supersteps; cancellation at step %d must stop within one superstep", stepsCompleted, cancelAt)
	}
}

// TestMachineTooSmallTypedError pins the undersized-machine contract of
// the caller-provided-machine entry points.
func TestMachineTooSmallTypedError(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	n := 32
	a := marray.RandomMonge(rng, n, n)
	v := make([]float64, n)
	w := make([]float64, n)
	for i := range v {
		v[i], w[i] = float64(i), float64(i)
	}
	f := func(vi, wj float64) float64 { return a.At(int(vi), int(wj)) }
	small := NewNetworkFor(Hypercube, 2, 2)
	if _, err := RowMinimaHypercube(small, v, w, f); !errors.Is(err, ErrMachineTooSmall) {
		t.Fatalf("error %v must match ErrMachineTooSmall", err)
	}
}

// TestValidationScreensRejectBadInputs pins the sampled screens at the
// public boundary: a grossly corrupted array is rejected with the typed
// sentinel before any machine runs.
func TestValidationScreensRejectBadInputs(t *testing.T) {
	// a[i,j] = i*j violates the Monge inequality in every 2x2 minor (the
	// defect is exactly 1), so the sampled screen rejects it whatever
	// minors it probes; its negation violates inverse-Monge everywhere.
	badMonge := NewFunc(12, 12, func(i, j int) float64 { return float64(i * j) })
	badInverse := NewFunc(12, 12, func(i, j int) float64 { return -float64(i * j) })

	if _, err := RowMinima(badMonge); !errors.Is(err, ErrNotMonge) {
		t.Fatalf("RowMinima error %v must match ErrNotMonge", err)
	}
	mach := NewPRAM(CRCW, 12)
	if _, err := RowMinimaPRAM(mach, badMonge); !errors.Is(err, ErrNotMonge) {
		t.Fatalf("RowMinimaPRAM error %v must match ErrNotMonge", err)
	}
	if _, err := RowMaxima(badInverse); !errors.Is(err, ErrNotInverseMonge) {
		t.Fatalf("RowMaxima error %v must match ErrNotInverseMonge", err)
	}
}
